//! Newman modularity of a node partition.

use crate::csr::{Csr, NodeId};

/// Computes the Newman modularity `Q` of the partition `community_of` on a
/// symmetric graph:
///
/// `Q = (1/2m) * sum_ij [A_ij - k_i*k_j/(2m)] * delta(c_i, c_j)`
///
/// where `2m` is the number of directed edges. Returns 0 for edgeless
/// graphs. `Q` lies in `[-0.5, 1)`; community-structured graphs typically
/// score above 0.3.
pub fn modularity(graph: &Csr, community_of: &[u32]) -> f64 {
    assert_eq!(
        graph.num_nodes(),
        community_of.len(),
        "partition length mismatch"
    );
    let two_m = graph.num_edges() as f64;
    if two_m == 0.0 {
        return 0.0;
    }
    // Intra-community edge fraction.
    let intra = graph
        .edges()
        .filter(|&(u, v)| community_of[u as usize] == community_of[v as usize])
        .count() as f64
        / two_m;
    // Expected intra fraction under the configuration model: sum over
    // communities of (total degree / 2m)^2.
    let max_id = community_of.iter().copied().max().unwrap_or(0) as usize;
    let mut deg_sum = vec![0f64; max_id + 1];
    for v in 0..graph.num_nodes() as NodeId {
        deg_sum[community_of[v as usize] as usize] += graph.degree(v) as f64;
    }
    let expected: f64 = deg_sum.iter().map(|&d| (d / two_m).powi(2)).sum();
    intra - expected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Two triangles joined by one edge.
    fn two_triangles() -> Csr {
        GraphBuilder::new(6)
            .clique(&[0, 1, 2])
            .clique(&[3, 4, 5])
            .undirected_edge(2, 3)
            .build()
            .expect("valid")
    }

    #[test]
    fn good_partition_scores_high() {
        let g = two_triangles();
        let q_good = modularity(&g, &[0, 0, 0, 1, 1, 1]);
        let q_bad = modularity(&g, &[0, 1, 0, 1, 0, 1]);
        let q_single = modularity(&g, &[0, 0, 0, 0, 0, 0]);
        assert!(q_good > 0.3, "q_good = {q_good}");
        assert!(q_good > q_bad);
        assert!(
            q_single.abs() < 1e-12,
            "one community has Q = 0, got {q_single}"
        );
    }

    #[test]
    fn singleton_partition_is_negative() {
        let g = two_triangles();
        let q = modularity(&g, &[0, 1, 2, 3, 4, 5]);
        assert!(
            q < 0.0,
            "all-singletons partition on a connected graph, q = {q}"
        );
    }

    #[test]
    fn edgeless_graph_is_zero() {
        let g = Csr::empty(3);
        assert_eq!(modularity(&g, &[0, 1, 2]), 0.0);
    }

    #[test]
    #[should_panic(expected = "partition length mismatch")]
    fn length_mismatch_panics() {
        modularity(&two_triangles(), &[0, 0]);
    }
}
