//! The paper's Table 1: all 15 evaluation datasets.
//!
//! `mean_cluster` / `cluster_cv` are generator knobs, not Table 1 columns:
//! Type I/III use community sizes typical of the respective networks
//! (citation/co-purchase communities run tens-to-hundreds of nodes), Type
//! II uses the benchmark sets' published average graph sizes (e.g.
//! PROTEINS_full averages ~40 nodes per protein graph, TWITTER-Partial
//! ~4.8). `artist` gets the highest `cluster_cv`, reproducing the high
//! community-size variance the paper blames for its weaker renumbering
//! gains (Sections 8.2, 8.6.2).

use crate::registry::{DatasetSpec, DatasetType};

/// Type I: small graphs, high-dimensional node embeddings.
pub const TYPE_I: &[DatasetSpec] = &[
    DatasetSpec {
        name: "Citeseer",
        num_nodes: 3_327,
        num_edges: 9_464,
        feat_dim: 3703,
        num_classes: 6,
        ty: DatasetType::TypeI,
        mean_cluster: 30,
        cluster_cv: 0.3,
    },
    DatasetSpec {
        name: "Cora",
        num_nodes: 2_708,
        num_edges: 10_858,
        feat_dim: 1433,
        num_classes: 7,
        ty: DatasetType::TypeI,
        mean_cluster: 30,
        cluster_cv: 0.3,
    },
    DatasetSpec {
        name: "Pubmed",
        num_nodes: 19_717,
        num_edges: 88_676,
        feat_dim: 500,
        num_classes: 3,
        ty: DatasetType::TypeI,
        mean_cluster: 50,
        cluster_cv: 0.3,
    },
    DatasetSpec {
        name: "PPI",
        num_nodes: 56_944,
        num_edges: 818_716,
        feat_dim: 50,
        num_classes: 121,
        ty: DatasetType::TypeI,
        mean_cluster: 100,
        cluster_cv: 0.4,
    },
];

/// Type II: batched graph-kernel datasets (block-diagonal adjacency).
pub const TYPE_II: &[DatasetSpec] = &[
    DatasetSpec {
        name: "PROTEINS_full",
        num_nodes: 43_471,
        num_edges: 162_088,
        feat_dim: 29,
        num_classes: 2,
        ty: DatasetType::TypeII,
        mean_cluster: 39,
        cluster_cv: 0.5,
    },
    DatasetSpec {
        name: "OVCAR-8H",
        num_nodes: 1_890_931,
        num_edges: 3_946_402,
        feat_dim: 66,
        num_classes: 2,
        ty: DatasetType::TypeII,
        mean_cluster: 47,
        cluster_cv: 0.3,
    },
    DatasetSpec {
        name: "Yeast",
        num_nodes: 1_714_644,
        num_edges: 3_636_546,
        feat_dim: 74,
        num_classes: 2,
        ty: DatasetType::TypeII,
        mean_cluster: 22,
        cluster_cv: 0.3,
    },
    DatasetSpec {
        name: "DD",
        num_nodes: 334_925,
        num_edges: 1_686_092,
        feat_dim: 89,
        num_classes: 2,
        ty: DatasetType::TypeII,
        mean_cluster: 284,
        cluster_cv: 0.6,
    },
    DatasetSpec {
        name: "TWITTER-Partial",
        num_nodes: 580_768,
        num_edges: 1_435_116,
        feat_dim: 1323,
        num_classes: 2,
        ty: DatasetType::TypeII,
        mean_cluster: 5,
        cluster_cv: 0.4,
    },
    DatasetSpec {
        name: "SW-620H",
        num_nodes: 1_889_971,
        num_edges: 3_944_206,
        feat_dim: 66,
        num_classes: 2,
        ty: DatasetType::TypeII,
        mean_cluster: 47,
        cluster_cv: 0.3,
    },
];

/// Type III: large irregular graphs.
pub const TYPE_III: &[DatasetSpec] = &[
    DatasetSpec {
        name: "amazon0505",
        num_nodes: 410_236,
        num_edges: 4_878_875,
        feat_dim: 96,
        num_classes: 22,
        ty: DatasetType::TypeIII,
        mean_cluster: 150,
        cluster_cv: 0.4,
    },
    DatasetSpec {
        name: "artist",
        num_nodes: 50_515,
        num_edges: 1_638_396,
        feat_dim: 100,
        num_classes: 12,
        ty: DatasetType::TypeIII,
        mean_cluster: 120,
        cluster_cv: 0.9,
    },
    DatasetSpec {
        name: "com-amazon",
        num_nodes: 334_863,
        num_edges: 1_851_744,
        feat_dim: 96,
        num_classes: 22,
        ty: DatasetType::TypeIII,
        mean_cluster: 100,
        cluster_cv: 0.4,
    },
    DatasetSpec {
        name: "soc-BlogCatalog",
        num_nodes: 88_784,
        num_edges: 2_093_195,
        feat_dim: 128,
        num_classes: 39,
        ty: DatasetType::TypeIII,
        mean_cluster: 200,
        cluster_cv: 0.5,
    },
    DatasetSpec {
        name: "amazon0601",
        num_nodes: 403_394,
        num_edges: 3_387_388,
        feat_dim: 96,
        num_classes: 22,
        ty: DatasetType::TypeIII,
        mean_cluster: 150,
        cluster_cv: 0.4,
    },
];

/// All 15 Table 1 datasets in paper order.
pub fn all_table1() -> Vec<DatasetSpec> {
    TYPE_I
        .iter()
        .chain(TYPE_II)
        .chain(TYPE_III)
        .copied()
        .collect()
}

/// Looks a Table 1 dataset up by its printed name.
pub fn table1_by_name(name: &str) -> Option<DatasetSpec> {
    all_table1().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_datasets() {
        assert_eq!(all_table1().len(), 15);
        assert_eq!(TYPE_I.len(), 4);
        assert_eq!(TYPE_II.len(), 6);
        assert_eq!(TYPE_III.len(), 5);
    }

    #[test]
    fn table1_rows_match_paper() {
        let citeseer = table1_by_name("Citeseer").expect("present");
        assert_eq!((citeseer.num_nodes, citeseer.num_edges), (3_327, 9_464));
        assert_eq!((citeseer.feat_dim, citeseer.num_classes), (3703, 6));
        let amazon = table1_by_name("amazon0505").expect("present");
        assert_eq!((amazon.num_nodes, amazon.num_edges), (410_236, 4_878_875));
        let twitter = table1_by_name("TWITTER-Partial").expect("present");
        assert_eq!(twitter.feat_dim, 1323, "highest Type II dimensionality");
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(table1_by_name("reddit").is_none());
    }

    #[test]
    fn artist_has_highest_type3_cluster_variance() {
        let artist = table1_by_name("artist").expect("present");
        for d in TYPE_III {
            if d.name != "artist" {
                assert!(artist.cluster_cv > d.cluster_cv);
            }
        }
    }

    #[test]
    fn every_dataset_generates_at_small_scale() {
        for spec in all_table1() {
            let d = spec.generate(0.01).unwrap_or_else(|e| {
                panic!("{} failed to generate: {e}", spec.name);
            });
            assert!(d.graph.num_nodes() >= 16, "{}", spec.name);
            assert!(d.graph.num_edges() > 0, "{}", spec.name);
            assert!(d.graph.is_symmetric(), "{}", spec.name);
        }
    }

    #[test]
    fn type1_average_dim_matches_paper_narrative() {
        // Section 8.2: Type I averages ~1421 dims; Type II (excluding
        // TWITTER-Partial) ~66.5.
        let t1: f64 = TYPE_I.iter().map(|d| d.feat_dim as f64).sum::<f64>() / TYPE_I.len() as f64;
        assert!((t1 - 1421.5).abs() < 1.0, "t1 avg = {t1}");
        let t2: f64 = TYPE_II
            .iter()
            .filter(|d| d.name != "TWITTER-Partial")
            .map(|d| d.feat_dim as f64)
            .sum::<f64>()
            / 5.0;
        assert!((t2 - 64.8).abs() < 3.0, "t2 avg = {t2}");
    }
}
