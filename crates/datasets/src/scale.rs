//! Proportional dataset scaling.

/// Scales `(nodes, edges)` by `scale` in `(0, 1]`, clamping to sane minima
/// so even extreme scales produce a usable graph.
///
/// # Panics
///
/// Panics if `scale` is not in `(0, 1]`.
pub fn scaled_counts(nodes: usize, edges: usize, scale: f64) -> (usize, usize) {
    assert!(
        scale > 0.0 && scale <= 1.0,
        "scale {scale} must lie in (0, 1]"
    );
    let n = ((nodes as f64 * scale).round() as usize).max(16);
    let e = ((edges as f64 * scale).round() as usize).max(32);
    // Edge count cannot exceed what the node count supports.
    (n, e.min(n * (n - 1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_at_one() {
        assert_eq!(scaled_counts(1000, 5000, 1.0), (1000, 5000));
    }

    #[test]
    fn proportional() {
        assert_eq!(scaled_counts(1000, 5000, 0.1), (100, 500));
    }

    #[test]
    fn floors_apply() {
        let (n, e) = scaled_counts(100, 300, 0.01);
        assert!(n >= 16 && e >= 32);
    }

    #[test]
    #[should_panic(expected = "must lie in (0, 1]")]
    fn zero_scale_panics() {
        scaled_counts(10, 10, 0.0);
    }
}
