//! Dataset specifications and materialization.

use gnnadvisor_graph::generators::{
    batched_graph, community_graph, BatchedParams, CommunityParams,
};
use gnnadvisor_graph::{Csr, Result};
use serde::{Deserialize, Serialize};

use crate::scale::scaled_counts;

/// The paper's three dataset classes (Section 8.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetType {
    /// Small graphs with high-dimensional features (GNN algorithm papers).
    TypeI,
    /// Batched sets of small dense graphs (graph-kernel benchmarks).
    TypeII,
    /// Large irregular graphs (SNAP-style).
    TypeIII,
}

impl DatasetType {
    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetType::TypeI => "I",
            DatasetType::TypeII => "II",
            DatasetType::TypeIII => "III",
        }
    }
}

/// Published statistics of one dataset (a Table 1 row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name as printed in Table 1.
    pub name: &'static str,
    /// `#Vertex`.
    pub num_nodes: usize,
    /// `#Edge` (directed).
    pub num_edges: usize,
    /// `#Dim` — input feature dimensionality.
    pub feat_dim: usize,
    /// `#Cls` — output classes.
    pub num_classes: usize,
    /// Structural class.
    pub ty: DatasetType,
    /// Mean community (Type I/III) or component-graph (Type II) size used
    /// by the generator; chosen per class, documented in `table1`.
    pub mean_cluster: usize,
    /// Community-size spread; the paper singles out `artist` for its high
    /// community-size variance (Section 8.2), which this knob reproduces.
    pub cluster_cv: f64,
}

/// A materialized dataset: graph plus metadata (features are generated on
/// demand by callers via `gnnadvisor-tensor::init::random_features` so huge
/// feature matrices are only allocated when actually needed).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The spec this dataset was generated from.
    pub spec: DatasetSpec,
    /// Scale factor applied.
    pub scale: f64,
    /// The synthesized graph.
    pub graph: Csr,
    /// Effective feature dimension (unscaled — dimensionality is shape,
    /// not size).
    pub feat_dim: usize,
    /// Effective class count.
    pub num_classes: usize,
}

impl DatasetSpec {
    /// Materializes the dataset at `scale` in `(0, 1]`, deterministic per
    /// `(name, scale)`.
    pub fn generate(&self, scale: f64) -> Result<Dataset> {
        let (n, e) = scaled_counts(self.num_nodes, self.num_edges, scale);
        let seed = fxhash(self.name) ^ (scale * 1e6) as u64;
        let graph = match self.ty {
            DatasetType::TypeI | DatasetType::TypeIII => {
                let params = CommunityParams {
                    num_nodes: n,
                    num_edges: e,
                    mean_community: self.mean_cluster.min(n.max(2) / 2).max(2),
                    community_size_cv: self.cluster_cv,
                    inter_fraction: 0.1,
                    shuffle_ids: true,
                };
                community_graph(&params, seed)?.0
            }
            DatasetType::TypeII => {
                let params = BatchedParams {
                    num_nodes: n,
                    num_edges: e,
                    mean_graph_size: self.mean_cluster.min(n.max(2) / 2).max(2),
                    graph_size_cv: self.cluster_cv,
                };
                batched_graph(&params, seed)?.0
            }
        };
        Ok(Dataset {
            spec: *self,
            scale,
            graph,
            feat_dim: self.feat_dim,
            num_classes: self.num_classes,
        })
    }
}

/// Small deterministic string hash (FNV-1a) for per-dataset seeds.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DatasetSpec {
        DatasetSpec {
            name: "unit-test",
            num_nodes: 10_000,
            num_edges: 80_000,
            feat_dim: 96,
            num_classes: 22,
            ty: DatasetType::TypeIII,
            mean_cluster: 64,
            cluster_cv: 0.3,
        }
    }

    #[test]
    fn full_scale_matches_spec() {
        let d = spec().generate(1.0).expect("valid");
        assert_eq!(d.graph.num_nodes(), 10_000);
        let ratio = d.graph.num_edges() as f64 / 80_000.0;
        assert!((0.7..=1.1).contains(&ratio), "edge ratio {ratio}");
        assert_eq!(d.feat_dim, 96);
    }

    #[test]
    fn scaling_shrinks_proportionally() {
        let d = spec().generate(0.1).expect("valid");
        assert_eq!(d.graph.num_nodes(), 1_000);
        assert!(d.graph.num_edges() < 12_000);
        assert_eq!(d.feat_dim, 96, "dimensionality is never scaled");
    }

    #[test]
    fn deterministic_per_name_and_scale() {
        let a = spec().generate(0.5).expect("valid");
        let b = spec().generate(0.5).expect("valid");
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn different_names_differ() {
        let mut other = spec();
        other.name = "unit-test-2";
        let a = spec().generate(0.5).expect("valid");
        let b = other.generate(0.5).expect("valid");
        assert_ne!(a.graph, b.graph);
    }

    #[test]
    fn type_ii_uses_batched_generator() {
        let s = DatasetSpec {
            ty: DatasetType::TypeII,
            mean_cluster: 40,
            ..spec()
        };
        let d = s.generate(0.2).expect("valid");
        // Batched graphs have tiny edge spans (block-diagonal).
        assert!(
            d.graph.mean_edge_span() < 80.0,
            "span = {}",
            d.graph.mean_edge_span()
        );
    }
}
