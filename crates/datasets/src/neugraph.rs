//! The NeuGraph-comparison datasets (Table 2).
//!
//! The paper's Table 2 uses "the same set of inputs as NeuGraph": reddit-
//! full, enwiki, and amazon. Their statistics are not printed in the
//! GNNAdvisor paper; the node/edge/dimension figures below are taken from
//! the NeuGraph paper's dataset table (ATC'19) and are approximations at
//! the fidelity the Table 2 reproduction needs — graphs large enough that
//! features exceed device memory and streaming becomes mandatory.

use crate::registry::{DatasetSpec, DatasetType};

/// reddit-full: the Reddit post graph with full 602-dim features.
pub const REDDIT_FULL: DatasetSpec = DatasetSpec {
    name: "reddit-full",
    num_nodes: 232_965,
    num_edges: 114_615_892,
    feat_dim: 602,
    num_classes: 41,
    ty: DatasetType::TypeIII,
    mean_cluster: 300,
    cluster_cv: 0.5,
};

/// enwiki: the English Wikipedia link graph with 300-dim embeddings.
pub const ENWIKI: DatasetSpec = DatasetSpec {
    name: "enwiki",
    num_nodes: 3_598_623,
    num_edges: 276_110_172,
    feat_dim: 300,
    num_classes: 12,
    ty: DatasetType::TypeIII,
    mean_cluster: 500,
    cluster_cv: 0.6,
};

/// amazon: the Amazon product co-purchase graph with 300-dim embeddings.
pub const AMAZON: DatasetSpec = DatasetSpec {
    name: "amazon",
    num_nodes: 8_601_204,
    num_edges: 231_594_310,
    feat_dim: 300,
    num_classes: 22,
    ty: DatasetType::TypeIII,
    mean_cluster: 400,
    cluster_cv: 0.5,
};

/// The three Table 2 benchmarks in paper order.
pub fn table2_datasets() -> [DatasetSpec; 3] {
    [REDDIT_FULL, ENWIKI, AMAZON]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_exceed_gnn_framework_scale() {
        // Every Table 2 graph carries >100M directed edges — the regime
        // where NeuGraph's chunk streaming is mandatory.
        for d in table2_datasets() {
            assert!(d.num_edges > 100_000_000, "{}", d.name);
        }
    }

    #[test]
    fn feature_matrices_exceed_p6000_memory_at_full_scale() {
        // enwiki: 3.6M x 300 x 4 B > 4 GB of activations across layers plus
        // edge buffers — streaming territory. (Sanity of the substitution.)
        let bytes = ENWIKI.num_nodes as u64 * ENWIKI.feat_dim as u64 * 4;
        assert!(bytes > 4_000_000_000u64 / 2);
    }

    #[test]
    fn generate_at_tiny_scale() {
        for d in table2_datasets() {
            let g = d.generate(0.001).expect("valid").graph;
            assert!(g.num_nodes() > 0 && g.num_edges() > 0, "{}", d.name);
        }
    }
}
