//! Dataset registry matched to the paper's evaluation inputs.
//!
//! The paper evaluates on 15 real datasets (Table 1) in three structural
//! classes plus the three NeuGraph-comparison graphs (Table 2). We cannot
//! ship those files, so each dataset is *synthesized to its published
//! statistics* — node count, edge count, feature dimension, class count —
//! with the structural property its class contributes (see DESIGN.md):
//! Type I/III are latent-community power-law graphs, Type II are
//! block-diagonal batched small graphs.
//!
//! Every dataset accepts a `scale` in `(0, 1]` that shrinks node and edge
//! counts proportionally, so full sweeps finish quickly while preserving
//! shape (degree distribution, community structure, dimensionality).

pub mod neugraph;
pub mod registry;
pub mod scale;
pub mod table1;

pub use registry::{Dataset, DatasetSpec, DatasetType};
pub use table1::{all_table1, table1_by_name, TYPE_I, TYPE_II, TYPE_III};
