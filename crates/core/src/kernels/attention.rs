//! Attention-coefficient kernels for GAT-class models.
//!
//! Section 4.2 singles out the second GNN class — "order-independent
//! aggregation with special edge features (e.g., weights, and edge
//! vectors) applied to each neighbor node, such as GIN, GAT". GAT needs
//! two extra passes beyond weighted aggregation:
//!
//! - [`EdgeAttentionKernel`]: per-edge raw scores
//!   `e_ij = LeakyReLU(a_src . z_i + a_dst . z_j)` — after the per-node
//!   dot products are folded into two length-`N` vectors, this is a
//!   scalar gather over both endpoints per edge.
//! - [`SegmentSoftmaxKernel`]: per-destination-node softmax over the
//!   incoming-edge scores (row-per-warp over the CSR slices).

use gnnadvisor_gpu::kernel::WARP_SIZE;
use gnnadvisor_gpu::{BlockSink, GridConfig, Kernel};
use gnnadvisor_graph::{Csr, NodeId};

use crate::kernels::arrays;

/// Per-edge raw attention scores from precomputed endpoint dots.
pub struct EdgeAttentionKernel<'a> {
    graph: &'a Csr,
    edge_dst: Vec<u32>,
}

impl<'a> EdgeAttentionKernel<'a> {
    /// One thread per edge.
    pub fn new(graph: &'a Csr) -> Self {
        let mut edge_dst = Vec::with_capacity(graph.num_edges());
        for v in 0..graph.num_nodes() {
            let deg = graph.row_ptr()[v + 1] - graph.row_ptr()[v];
            edge_dst.extend(std::iter::repeat_n(v as u32, deg));
        }
        Self { graph, edge_dst }
    }
}

impl Kernel for EdgeAttentionKernel<'_> {
    fn name(&self) -> &str {
        "gat_edge_attention"
    }

    fn grid(&self) -> GridConfig {
        GridConfig {
            num_blocks: self.graph.num_edges().div_ceil(256).max(1),
            threads_per_block: 256,
            shared_mem_bytes: 0,
        }
    }

    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        let e_total = self.graph.num_edges();
        let start = block_id * 256;
        let end = (start + 256).min(e_total);
        let col = self.graph.col_idx();

        let mut w = start;
        while w < end {
            let we = (w + WARP_SIZE as usize).min(end);
            let lanes = (we - w) as u64;
            sink.begin_warp();
            // Edge endpoints, coalesced.
            sink.global_read(arrays::COL_IDX, w as u64 * 4, lanes * 4);
            sink.global_read(arrays::EDGE_SRC, w as u64 * 4, lanes * 4);
            // Source-side dots gather per lane (4 B scalars, scattered by
            // source id); destination-side dots are contiguous runs and
            // effectively coalesced.
            let mut src_offsets = [0u64; WARP_SIZE as usize];
            for (slot, &u) in src_offsets.iter_mut().zip(&col[w..we]) {
                *slot = u as u64 * 4;
            }
            sink.global_read_scattered(arrays::FEAT_IN, &src_offsets[..we - w], 4);
            let dst0 = self.edge_dst[w] as u64;
            let dst1 = self.edge_dst[we - 1] as u64;
            sink.global_read(arrays::FEAT_OUT, dst0 * 4, (dst1 - dst0 + 1) * 4);
            // add + LeakyReLU per lane.
            sink.compute(3, lanes as u32);
            // Raw scores out, coalesced by edge id.
            sink.global_write(arrays::MSG_BUF, w as u64 * 4, lanes * 4);
            w = we;
        }
    }
}

/// Per-node softmax over incoming-edge scores, row-per-warp.
pub struct SegmentSoftmaxKernel<'a> {
    graph: &'a Csr,
}

impl<'a> SegmentSoftmaxKernel<'a> {
    /// One warp per destination node.
    pub fn new(graph: &'a Csr) -> Self {
        Self { graph }
    }
}

/// Warps per block, matching the generic row mapping.
const WARPS_PER_BLOCK: usize = 8;

impl Kernel for SegmentSoftmaxKernel<'_> {
    fn name(&self) -> &str {
        "gat_segment_softmax"
    }

    fn grid(&self) -> GridConfig {
        GridConfig {
            num_blocks: self.graph.num_nodes().div_ceil(WARPS_PER_BLOCK).max(1),
            threads_per_block: (WARPS_PER_BLOCK as u32) * WARP_SIZE,
            shared_mem_bytes: 0,
        }
    }

    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        let n = self.graph.num_nodes();
        let start = block_id * WARPS_PER_BLOCK;
        let end = (start + WARPS_PER_BLOCK).min(n);
        for v in start..end {
            let v = v as NodeId;
            sink.begin_warp();
            let deg = self.graph.degree(v) as u64;
            if deg == 0 {
                continue;
            }
            let row_start = self.graph.row_ptr()[v as usize] as u64;
            // Two passes over the node's edge-score slice (max+sum, then
            // normalize) with exp per element.
            sink.global_read(arrays::MSG_BUF, row_start * 4, deg * 4);
            sink.compute(2 * deg.div_ceil(WARP_SIZE as u64) + 8, (deg.min(32)) as u32);
            sink.global_write(arrays::MSG_BUF, row_start * 4, deg * 4);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submit::launch;
    use gnnadvisor_gpu::{Engine, GpuSpec};
    use gnnadvisor_graph::generators::barabasi_albert;

    #[test]
    fn attention_kernels_run_and_scale_with_edges() {
        let small = barabasi_albert(200, 3, 1).expect("valid");
        let large = barabasi_albert(2000, 3, 1).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let ms = |g: &Csr| {
            launch(&engine, &EdgeAttentionKernel::new(g))
                .expect("runs")
                .time_ms
                + launch(&engine, &SegmentSoftmaxKernel::new(g))
                    .expect("runs")
                    .time_ms
        };
        assert!(ms(&large) > ms(&small));
    }

    #[test]
    fn attention_cost_is_dimension_independent() {
        // Coefficients work on scalars; the kernels never touch the
        // embedding width, unlike the aggregation itself.
        let g = barabasi_albert(500, 4, 2).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let m = launch(&engine, &EdgeAttentionKernel::new(&g)).expect("runs");
        assert!(
            m.dram_bytes() < g.num_edges() as u64 * 64,
            "scalar passes stay lean"
        );
    }

    #[test]
    fn softmax_touches_each_edge_twice() {
        let g = barabasi_albert(300, 5, 3).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let m = launch(&engine, &SegmentSoftmaxKernel::new(&g)).expect("runs");
        // Read + write of the E-score buffer.
        assert!(m.l2_hits + m.l2_misses >= 2 * (g.num_edges() as u64 * 4) / 128);
    }
}
