//! Node-centric aggregation baseline (Figure 4b).
//!
//! One thread per node iterates that node's whole neighbor list over all
//! dimensions. On power-law graphs the warp's lockstep execution is bounded
//! by the hub lane, so most lanes idle — the coarse-grained extreme the
//! paper contrasts group-based partitioning against. No atomics are needed
//! (each thread owns its output row), but per-lane feature reads are
//! scattered across rows, defeating coalescing.

use gnnadvisor_gpu::kernel::WARP_SIZE;
use gnnadvisor_gpu::{BlockSink, GridConfig, Kernel};
use gnnadvisor_graph::{Csr, NodeId};

use crate::kernels::arrays;
use crate::kernels::F32;

/// Node-centric (vertex-parallel) aggregation kernel.
pub struct NodeCentricKernel<'a> {
    graph: &'a Csr,
    dim: usize,
    threads_per_block: u32,
}

impl<'a> NodeCentricKernel<'a> {
    /// One thread per node with the given block width.
    pub fn new(graph: &'a Csr, dim: usize, threads_per_block: u32) -> Self {
        Self {
            graph,
            dim,
            threads_per_block: threads_per_block.max(WARP_SIZE),
        }
    }
}

impl Kernel for NodeCentricKernel<'_> {
    fn name(&self) -> &str {
        "node_centric_aggregation"
    }

    fn grid(&self) -> GridConfig {
        GridConfig {
            num_blocks: self
                .graph
                .num_nodes()
                .div_ceil(self.threads_per_block as usize)
                .max(1),
            threads_per_block: self.threads_per_block,
            shared_mem_bytes: 0,
        }
    }

    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        let n = self.graph.num_nodes();
        let start = block_id * self.threads_per_block as usize;
        let end = (start + self.threads_per_block as usize).min(n);
        if start >= end {
            return;
        }
        let row_bytes = self.dim as u64 * F32;

        let mut warp_nodes = start;
        while warp_nodes < end {
            let warp_end = (warp_nodes + WARP_SIZE as usize).min(end);
            let lanes = warp_nodes as NodeId..warp_end as NodeId;
            sink.begin_warp();

            // Row-pointer loads coalesce; neighbor-id loads are per-lane.
            sink.global_read(
                arrays::ROW_PTR,
                warp_nodes as u64 * 4,
                (warp_end - warp_nodes) as u64 * 4,
            );

            // Lockstep neighbor rounds: round r reads the r-th neighbor of
            // every lane that still has one — per-lane scattered rows. A
            // warp is at most 32 lanes, so the round's offsets fit on the
            // stack.
            let max_deg = lanes
                .clone()
                .map(|v| self.graph.degree(v))
                .max()
                .unwrap_or(0);
            let mut offsets = [0u64; WARP_SIZE as usize];
            for r in 0..max_deg {
                let mut active = 0;
                for v in lanes.clone() {
                    if let Some(&u) = self.graph.neighbors(v).get(r) {
                        offsets[active] = u as u64 * row_bytes;
                        active += 1;
                    }
                }
                if active > 0 {
                    sink.global_read_scattered(arrays::FEAT_IN, &offsets[..active], row_bytes);
                }
            }

            // Per-lane accumulation work: deg * D FMAs — the imbalance the
            // engine converts into low SM efficiency.
            let mut lane_cycles = [0u64; WARP_SIZE as usize];
            for (i, v) in lanes.clone().enumerate() {
                lane_cycles[i] = self.graph.degree(v) as u64 * self.dim as u64;
            }
            sink.compute_lanes(&lane_cycles);

            // Each lane writes its own output row (scattered across rows,
            // but charged per row since rows are contiguous internally).
            for v in lanes {
                if self.graph.degree(v) > 0 {
                    sink.global_write(arrays::FEAT_OUT, v as u64 * row_bytes, row_bytes);
                }
            }
            warp_nodes = warp_end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submit::launch;
    use gnnadvisor_gpu::{Engine, GpuSpec};
    use gnnadvisor_graph::generators::{barabasi_albert, erdos_renyi};

    #[test]
    fn no_atomics_needed() {
        let g = barabasi_albert(300, 4, 3).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let m = launch(&engine, &NodeCentricKernel::new(&g, 16, 256)).expect("runs");
        assert_eq!(m.atomic_ops, 0);
        assert!(m.dram_read_bytes > 0);
    }

    #[test]
    fn skewed_degrees_tank_sm_efficiency() {
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let skewed = barabasi_albert(2000, 3, 5).expect("valid");
        let flat = erdos_renyi(2000, 6000, 5).expect("valid");
        let m_skew = launch(&engine, &NodeCentricKernel::new(&skewed, 32, 256)).expect("runs");
        let m_flat = launch(&engine, &NodeCentricKernel::new(&flat, 32, 256)).expect("runs");
        assert!(
            m_skew.sm_efficiency < m_flat.sm_efficiency,
            "power-law graph must show worse lane utilization: {} vs {}",
            m_skew.sm_efficiency,
            m_flat.sm_efficiency
        );
    }

    #[test]
    fn grid_covers_all_nodes() {
        let g = erdos_renyi(1000, 3000, 1).expect("valid");
        let k = NodeCentricKernel::new(&g, 16, 256);
        assert_eq!(k.grid().num_blocks, 4);
    }
}
