//! The GNNAdvisor aggregation kernel (Sections 5.1–5.4, 6.2).
//!
//! Workload shape: each neighbor group is handled by a *team* of `dw`
//! adjacent lanes; `tpb / dw` groups share a thread block. Intra-group
//! accumulation happens in registers (atomic-free, Section 5.2); results
//! are staged in shared memory per Algorithm 1 and flushed to global memory
//! by each node-run's leader with element atomics (Section 6.2). With
//! block-level optimization disabled (the Figure 12c ablation), every group
//! flushes straight to global memory with atomics.

use gnnadvisor_gpu::kernel::WARP_SIZE;
use gnnadvisor_gpu::{BlockSink, GridConfig, Kernel};
use gnnadvisor_graph::Csr;

use crate::kernels::arrays;
use crate::kernels::F32;
use crate::memory::organize::SharedLayout;
use crate::tuning::params::RuntimeParams;
use crate::workload::dimension::DimensionPlan;
use crate::workload::group::NeighborGroup;
use crate::workload::mapping::BlockMapping;

/// The GNNAdvisor aggregation kernel over a prepared group partition.
pub struct AdvisorKernel<'a> {
    graph: &'a Csr,
    groups: &'a [NeighborGroup],
    /// `Some` when block-level optimization (shared staging + leader flush)
    /// is enabled; the layout must have been built with this kernel's
    /// groups-per-block.
    layout: Option<&'a SharedLayout>,
    dim: usize,
    params: RuntimeParams,
    mapping: BlockMapping,
    plan: DimensionPlan,
}

impl<'a> AdvisorKernel<'a> {
    /// Builds the kernel. When `layout` is provided its `groups_per_block`
    /// must match `params.groups_per_block()`.
    ///
    /// # Panics
    ///
    /// Panics on a layout/params mismatch — that is a programming error in
    /// the runtime, not an input error.
    pub fn new(
        graph: &'a Csr,
        groups: &'a [NeighborGroup],
        layout: Option<&'a SharedLayout>,
        dim: usize,
        params: RuntimeParams,
    ) -> Self {
        if let Some(l) = layout {
            assert_eq!(
                l.groups_per_block,
                params.groups_per_block(),
                "shared layout built for a different block shape"
            );
        }
        let mapping = BlockMapping::new(params.threads_per_block, params.dim_workers, groups.len());
        let plan = DimensionPlan::new(params.dim_workers, dim);
        Self {
            graph,
            groups,
            layout,
            dim,
            params,
            mapping,
            plan,
        }
    }
}

impl Kernel for AdvisorKernel<'_> {
    fn name(&self) -> &str {
        "advisor_aggregation"
    }

    fn grid(&self) -> GridConfig {
        GridConfig {
            num_blocks: self.mapping.num_blocks(),
            threads_per_block: self.params.threads_per_block,
            shared_mem_bytes: self.layout.map_or(0, |l| l.shared_bytes(self.dim)),
        }
    }

    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        let (s, e) = self.mapping.block_range(block_id);
        if s == e {
            return;
        }
        let row_bytes = self.dim as u64 * F32;
        let teams_per_warp = self.plan.groups_per_warp() as usize;
        let dw = self.plan.workers as usize;

        for (chunk_idx, warp_groups) in self.groups[s..e].chunks(teams_per_warp).enumerate() {
            let chunk_base = s + chunk_idx * teams_per_warp;
            sink.begin_warp();
            // Neighbor-id loads: each group's slice of col_idx is
            // contiguous, and consecutive groups are adjacent, so the load
            // coalesces.
            for g in warp_groups {
                sink.global_read(arrays::COL_IDX, g.start as u64 * 4, g.len() as u64 * 4);
            }
            // Feature-row loads: each team reads its neighbors' rows with
            // `dw`-wide transactions on adjacent dimensions (Figure 6b).
            for g in warp_groups {
                for &u in &self.graph.col_idx()[g.start as usize..g.end as usize] {
                    sink.global_read_strided(
                        arrays::FEAT_IN,
                        u as u64 * row_bytes,
                        row_bytes,
                        self.plan.transactions_per_row(),
                        self.plan.active_workers(),
                    );
                }
            }
            // Register accumulation: per-lane FMA work; lanes of one team
            // are balanced, teams differ only by group fill.
            let mut lanes = [0u64; WARP_SIZE as usize];
            for (t, g) in warp_groups.iter().enumerate() {
                let work = self.plan.lane_cycles(g.len());
                let active = self.plan.active_workers() as usize;
                for lane in lanes.iter_mut().skip(t * dw).take(active) {
                    *lane = work;
                }
            }
            sink.compute_lanes(&lanes);

            match self.layout {
                Some(layout) => {
                    // Stage the team's partial into its node's shared slot.
                    for (t, g) in warp_groups.iter().enumerate() {
                        let idx = chunk_base + t;
                        sink.shared_access(row_bytes);
                        // Leaders flush shared -> global with element
                        // atomics once the block-wide barrier passes.
                        if layout.leader[idx] {
                            sink.atomic_rmw(
                                arrays::FEAT_OUT,
                                g.node as u64 * row_bytes,
                                row_bytes,
                                self.dim as u64,
                            );
                        }
                    }
                }
                None => {
                    // Ablation: every group goes straight to global memory.
                    for g in warp_groups {
                        sink.atomic_rmw(
                            arrays::FEAT_OUT,
                            g.node as u64 * row_bytes,
                            row_bytes,
                            self.dim as u64,
                        );
                    }
                }
            }
        }
        if self.layout.is_some() {
            // One barrier between accumulation and the leader flush phase.
            sink.sync();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::organize::organize_shared;
    use crate::submit::launch;
    use crate::workload::group::partition_groups;
    use gnnadvisor_gpu::{Engine, GpuSpec};
    use gnnadvisor_graph::generators::barabasi_albert;

    fn setup(gs: usize) -> (Csr, Vec<NeighborGroup>) {
        let g = barabasi_albert(500, 6, 21).expect("valid");
        let groups = partition_groups(&g, gs).expect("valid");
        (g, groups)
    }

    fn params(gs: usize, tpb: u32, dw: u32) -> RuntimeParams {
        RuntimeParams {
            group_size: gs,
            threads_per_block: tpb,
            dim_workers: dw,
            ..Default::default()
        }
    }

    #[test]
    fn runs_and_reads_every_edge() {
        let (g, groups) = setup(4);
        let p = params(4, 256, 8);
        let layout = organize_shared(&groups, p.groups_per_block());
        let k = AdvisorKernel::new(&g, &groups, Some(&layout), 16, p);
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let m = launch(&engine, &k).expect("runs");
        // Every edge loads one 64 B feature row: at least E/2 line touches.
        assert!(m.l2_hits + m.l2_misses > g.num_edges() as u64 / 2);
        assert!(m.elapsed_cycles > 0);
    }

    #[test]
    fn shared_staging_reduces_atomics() {
        let (g, groups) = setup(2);
        let p = params(2, 256, 8);
        let layout = organize_shared(&groups, p.groups_per_block());
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let with = launch(
            &engine,
            &AdvisorKernel::new(&g, &groups, Some(&layout), 32, p),
        )
        .expect("runs");
        let without = launch(&engine, &AdvisorKernel::new(&g, &groups, None, 32, p)).expect("runs");
        assert!(
            with.atomic_ops < without.atomic_ops,
            "leader flush must issue fewer atomics: {} vs {}",
            with.atomic_ops,
            without.atomic_ops
        );
        assert_eq!(without.atomic_ops, groups.len() as u64 * 32);
        assert_eq!(with.atomic_ops, layout.num_leaders() as u64 * 32);
    }

    #[test]
    fn grid_reflects_params() {
        let (g, groups) = setup(4);
        let p = params(4, 128, 4);
        let k = AdvisorKernel::new(&g, &groups, None, 16, p);
        let grid = k.grid();
        assert_eq!(grid.threads_per_block, 128);
        assert_eq!(grid.num_blocks, groups.len().div_ceil(32));
        assert_eq!(grid.shared_mem_bytes, 0);
    }

    #[test]
    fn deterministic_metrics() {
        let (g, groups) = setup(8);
        let p = params(8, 256, 16);
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let a = launch(&engine, &AdvisorKernel::new(&g, &groups, None, 64, p)).expect("runs");
        let b = launch(&engine, &AdvisorKernel::new(&g, &groups, None, 64, p)).expect("runs");
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "different block shape")]
    fn layout_mismatch_panics() {
        let (g, groups) = setup(4);
        let layout = organize_shared(&groups, 7); // wrong gpb
        let p = params(4, 256, 8); // gpb = 32
        let _ = AdvisorKernel::new(&g, &groups, Some(&layout), 16, p);
    }
}
