//! GunRock-style baseline: frontier advance with scalar operators.
//!
//! GunRock's operators (advance / filter) were built for traditional graph
//! analytics where a node carries one scalar. Its GraphSage port runs the
//! embedding math through those operators, so each (edge, dimension)
//! element is touched by scalar loads with no dimension fusion and no
//! coalescing across the embedding — plus several operator-kernel launches
//! per layer. That mechanism is what produces the paper's 27–100x gaps
//! (Figure 10b).

use gnnadvisor_gpu::kernel::WARP_SIZE;
use gnnadvisor_gpu::{BlockSink, GridConfig, Kernel};
use gnnadvisor_graph::Csr;

use crate::kernels::arrays;
use crate::kernels::F32;

/// Operator-kernel launches GunRock issues per advance step (advance,
/// filter, compute, compact) — charged as extra launch overhead by the
/// framework adapter.
pub const LAUNCHES_PER_ADVANCE: usize = 4;

/// Frontier-advance aggregation with per-(edge, dim) scalar processing.
pub struct AdvanceKernel<'a> {
    graph: &'a Csr,
    dim: usize,
    edge_dst: Vec<u32>,
}

impl<'a> AdvanceKernel<'a> {
    /// Advance over all edges at dimensionality `dim`.
    pub fn new(graph: &'a Csr, dim: usize) -> Self {
        let mut edge_dst = Vec::with_capacity(graph.num_edges());
        for v in 0..graph.num_nodes() {
            let deg = graph.row_ptr()[v + 1] - graph.row_ptr()[v];
            edge_dst.extend(std::iter::repeat_n(v as u32, deg));
        }
        Self {
            graph,
            dim,
            edge_dst,
        }
    }
}

impl Kernel for AdvanceKernel<'_> {
    fn name(&self) -> &str {
        "gunrock_advance"
    }

    fn grid(&self) -> GridConfig {
        GridConfig {
            num_blocks: self.graph.num_edges().div_ceil(256).max(1),
            threads_per_block: 256,
            shared_mem_bytes: 0,
        }
    }

    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        let e_total = self.graph.num_edges();
        let start = block_id * 256;
        let end = (start + 256).min(e_total);
        let row_bytes = self.dim as u64 * F32;
        let col = self.graph.col_idx();

        let mut w = start;
        while w < end {
            let we = (w + WARP_SIZE as usize).min(end);
            let lanes = (we - w) as u32;
            sink.begin_warp();
            // Frontier bookkeeping: edge list + frontier flags.
            sink.global_read(arrays::COL_IDX, w as u64 * 4, lanes as u64 * 4);
            sink.global_read(arrays::EDGE_SRC, w as u64 * 4, lanes as u64 * 4);

            // Scalar dimension loop: each lane walks its source row one
            // element at a time. Cache sees the row's lines; the issue
            // pipeline pays one transaction per element per lane, which is
            // the "no dimension fusion" penalty.
            let mut offsets = [0u64; WARP_SIZE as usize];
            for (slot, &u) in offsets.iter_mut().zip(&col[w..we]) {
                *slot = u as u64 * row_bytes;
            }
            sink.global_read_scattered(arrays::FEAT_IN, &offsets[..we - w], row_bytes);
            // D scalar advance passes: every element is its own load
            // transaction plus per-pass frontier bookkeeping — the "no
            // dimension fusion" cost. 8 issue slots per element covers the
            // uncoalesced load (4), the ALU op, and topology re-reads the
            // later passes repeat (cache-resident, so no extra DRAM).
            let scalar_issue = self.dim as u64 * 8;
            let lane_cycles = [scalar_issue; WARP_SIZE as usize];
            sink.compute_lanes(&lane_cycles[..lanes as usize]);

            // Scalar atomic pushes: one per (edge, dim).
            for e in w..we {
                let dst = self.edge_dst[e] as u64;
                sink.atomic_rmw(
                    arrays::FEAT_OUT,
                    dst * row_bytes,
                    row_bytes,
                    self.dim as u64,
                );
            }
            w = we;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::spmm_dgl::SpmmKernel;
    use crate::submit::launch;
    use gnnadvisor_gpu::{Engine, GpuSpec};
    use gnnadvisor_graph::generators::barabasi_albert;

    #[test]
    fn far_slower_than_fused_spmm() {
        let g = barabasi_albert(500, 5, 6).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let d = 96;
        let advance = launch(&engine, &AdvanceKernel::new(&g, d)).expect("runs");
        let spmm = launch(&engine, &SpmmKernel::new(&g, d)).expect("runs");
        // The raw kernel burns far more issue slots and atomics than fused
        // SpMM; end-to-end the per-dimension operator launches (charged by
        // the framework adapter) widen this to the paper's 27-100x — see
        // `frameworks::tests::gunrock_gap_is_order_of_magnitude`.
        assert!(advance.atomic_ops > 0 && spmm.atomic_ops == 0);
        assert!(
            advance.atomic_serialization_cycles > 0,
            "hub rows serialize scalar atomics"
        );
    }

    #[test]
    fn atomics_per_edge_per_dim() {
        let g = barabasi_albert(200, 3, 6).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let m = launch(&engine, &AdvanceKernel::new(&g, 8)).expect("runs");
        assert_eq!(m.atomic_ops, g.num_edges() as u64 * 8);
    }
}
