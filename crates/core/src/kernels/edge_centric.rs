//! Edge-centric aggregation baseline (Figure 4c).
//!
//! One thread per edge: perfectly balanced, but every edge must push its
//! contribution into the destination row with atomics, and high-degree
//! nodes become atomic hotspots. This is the fine-grained extreme whose
//! "excessive thread launching and synchronization overheads" the paper
//! calls out (Section 4.1.1).

use gnnadvisor_gpu::kernel::WARP_SIZE;
use gnnadvisor_gpu::{BlockSink, GridConfig, Kernel};
use gnnadvisor_graph::Csr;

use crate::kernels::arrays;
use crate::kernels::F32;

/// Edge-centric (edge-parallel) aggregation kernel.
///
/// Edges are enumerated in CSR order; the destination of edge `i` is the
/// row owning position `i`, and the source is `col_idx[i]`.
pub struct EdgeCentricKernel<'a> {
    graph: &'a Csr,
    dim: usize,
    threads_per_block: u32,
    /// Destination node of each edge index (COO expansion, precomputed
    /// once — a real edge-centric kernel carries the same array).
    edge_dst: Vec<u32>,
}

impl<'a> EdgeCentricKernel<'a> {
    /// One thread per edge with the given block width.
    pub fn new(graph: &'a Csr, dim: usize, threads_per_block: u32) -> Self {
        let mut edge_dst = Vec::with_capacity(graph.num_edges());
        for v in 0..graph.num_nodes() {
            let deg = graph.row_ptr()[v + 1] - graph.row_ptr()[v];
            edge_dst.extend(std::iter::repeat_n(v as u32, deg));
        }
        Self {
            graph,
            dim,
            threads_per_block: threads_per_block.max(WARP_SIZE),
            edge_dst,
        }
    }
}

impl Kernel for EdgeCentricKernel<'_> {
    fn name(&self) -> &str {
        "edge_centric_aggregation"
    }

    fn grid(&self) -> GridConfig {
        GridConfig {
            num_blocks: self
                .graph
                .num_edges()
                .div_ceil(self.threads_per_block as usize)
                .max(1),
            threads_per_block: self.threads_per_block,
            shared_mem_bytes: 0,
        }
    }

    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        let e_total = self.graph.num_edges();
        let start = block_id * self.threads_per_block as usize;
        let end = (start + self.threads_per_block as usize).min(e_total);
        let row_bytes = self.dim as u64 * F32;
        let col = self.graph.col_idx();

        let mut warp_start = start;
        while warp_start < end {
            let warp_end = (warp_start + WARP_SIZE as usize).min(end);
            sink.begin_warp();
            // Edge endpoints load coalesced (consecutive edge ids).
            let lanes = (warp_end - warp_start) as u64;
            sink.global_read(arrays::COL_IDX, warp_start as u64 * 4, lanes * 4);
            sink.global_read(arrays::EDGE_SRC, warp_start as u64 * 4, lanes * 4);

            // Each lane reads its own source row: scattered.
            let offsets: Vec<u64> = col[warp_start..warp_end]
                .iter()
                .map(|&u| u as u64 * row_bytes)
                .collect();
            sink.global_read_scattered(arrays::FEAT_IN, &offsets, row_bytes);

            // Uniform per-lane work: D FMAs.
            sink.compute(self.dim as u64, lanes as u32);

            // Every edge atomically accumulates D elements into its
            // destination row — the hotspot generator.
            for e in warp_start..warp_end {
                let dst = self.edge_dst[e] as u64;
                sink.atomic_rmw(
                    arrays::FEAT_OUT,
                    dst * row_bytes,
                    row_bytes,
                    self.dim as u64,
                );
            }
            warp_start = warp_end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submit::launch;
    use gnnadvisor_gpu::{Engine, GpuSpec};
    use gnnadvisor_graph::generators::barabasi_albert;
    use gnnadvisor_graph::GraphBuilder;

    #[test]
    fn atomics_scale_with_edges_and_dim() {
        let g = barabasi_albert(200, 3, 1).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let d = 16;
        let m = launch(&engine, &EdgeCentricKernel::new(&g, d, 256)).expect("runs");
        assert_eq!(m.atomic_ops, g.num_edges() as u64 * d as u64);
    }

    #[test]
    fn hub_node_creates_hotspot() {
        // A star: every edge into the hub hits the same output row.
        let leaves: Vec<u32> = (1..513).collect();
        let star = GraphBuilder::new(513)
            .star(0, &leaves)
            .build()
            .expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let m = launch(&engine, &EdgeCentricKernel::new(&star, 8, 256)).expect("runs");
        assert!(
            m.atomic_serialization_cycles > 0,
            "hub contention must serialize atomics"
        );
    }

    #[test]
    fn edge_dst_matches_csr() {
        let g = GraphBuilder::new(3)
            .path(&[0, 1, 2])
            .build()
            .expect("valid");
        let k = EdgeCentricKernel::new(&g, 4, 32);
        // CSR order: 0->1, 1->0, 1->2, 2->1.
        assert_eq!(k.edge_dst, vec![0, 1, 1, 2]);
    }
}
