//! PyG-style baseline: torch-scatter gather / scatter-reduce.
//!
//! PyG materializes per-edge messages — an `E x D` buffer — with a gather
//! kernel, then reduces it into node rows with an atomic scatter kernel.
//! Two full passes over `E x D` global memory plus `E x D` atomics is the
//! "excessive data movement and thread synchronization" the paper blames
//! for PyG's deficit (Section 3.3), and is why the gap explodes on
//! high-dimensional Type II inputs like TWITTER-Partial (Figure 10a).

use gnnadvisor_gpu::kernel::WARP_SIZE;
use gnnadvisor_gpu::{BlockSink, GridConfig, Kernel};
use gnnadvisor_graph::Csr;

use crate::kernels::arrays;
use crate::kernels::F32;

fn edge_grid(num_edges: usize) -> GridConfig {
    GridConfig {
        num_blocks: num_edges.div_ceil(256).max(1),
        threads_per_block: 256,
        shared_mem_bytes: 0,
    }
}

/// Pass 1: gather source-node features into the per-edge message buffer.
pub struct GatherKernel<'a> {
    graph: &'a Csr,
    dim: usize,
}

impl<'a> GatherKernel<'a> {
    /// Gather over all edges at dimensionality `dim`.
    pub fn new(graph: &'a Csr, dim: usize) -> Self {
        Self { graph, dim }
    }
}

impl Kernel for GatherKernel<'_> {
    fn name(&self) -> &str {
        "pyg_gather"
    }

    fn grid(&self) -> GridConfig {
        edge_grid(self.graph.num_edges())
    }

    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        let e_total = self.graph.num_edges();
        let start = block_id * 256;
        let end = (start + 256).min(e_total);
        let row_bytes = self.dim as u64 * F32;
        let col = self.graph.col_idx();

        let mut w = start;
        while w < end {
            let we = (w + WARP_SIZE as usize).min(end);
            sink.begin_warp();
            sink.global_read(arrays::COL_IDX, w as u64 * 4, (we - w) as u64 * 4);
            // Scattered source-row reads (a warp is at most 32 lanes, so
            // the offset list lives on the stack).
            let mut offsets = [0u64; WARP_SIZE as usize];
            for (slot, &u) in offsets.iter_mut().zip(&col[w..we]) {
                *slot = u as u64 * row_bytes;
            }
            sink.global_read_scattered(arrays::FEAT_IN, &offsets[..we - w], row_bytes);
            // ...streamed out as a contiguous message block (coalesced, but
            // it is E x D of brand-new traffic).
            sink.global_write(
                arrays::MSG_BUF,
                w as u64 * row_bytes,
                (we - w) as u64 * row_bytes,
            );
            sink.compute(self.dim as u64, (we - w) as u32);
            w = we;
        }
    }
}

/// Pass 2: scatter-reduce the message buffer into node rows with atomics.
pub struct ScatterKernel<'a> {
    graph: &'a Csr,
    dim: usize,
    edge_dst: Vec<u32>,
}

impl<'a> ScatterKernel<'a> {
    /// Scatter-reduce over all edges at dimensionality `dim`.
    pub fn new(graph: &'a Csr, dim: usize) -> Self {
        let mut edge_dst = Vec::with_capacity(graph.num_edges());
        for v in 0..graph.num_nodes() {
            let deg = graph.row_ptr()[v + 1] - graph.row_ptr()[v];
            edge_dst.extend(std::iter::repeat_n(v as u32, deg));
        }
        Self {
            graph,
            dim,
            edge_dst,
        }
    }
}

impl Kernel for ScatterKernel<'_> {
    fn name(&self) -> &str {
        "pyg_scatter_reduce"
    }

    fn grid(&self) -> GridConfig {
        edge_grid(self.graph.num_edges())
    }

    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        let e_total = self.graph.num_edges();
        let start = block_id * 256;
        let end = (start + 256).min(e_total);
        let row_bytes = self.dim as u64 * F32;

        let mut w = start;
        while w < end {
            let we = (w + WARP_SIZE as usize).min(end);
            sink.begin_warp();
            // Message rows stream back in coalesced...
            sink.global_read(
                arrays::MSG_BUF,
                w as u64 * row_bytes,
                (we - w) as u64 * row_bytes,
            );
            // ...and land in destination rows via element atomics.
            for e in w..we {
                let dst = self.edge_dst[e] as u64;
                sink.atomic_rmw(
                    arrays::FEAT_OUT,
                    dst * row_bytes,
                    row_bytes,
                    self.dim as u64,
                );
            }
            w = we;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submit::launch;
    use gnnadvisor_gpu::{Engine, GpuSpec};
    use gnnadvisor_graph::generators::barabasi_albert;

    #[test]
    fn gather_materializes_edge_buffer() {
        let g = barabasi_albert(300, 4, 4).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let d = 64;
        let m = launch(&engine, &GatherKernel::new(&g, d)).expect("runs");
        let msg_bytes = g.num_edges() as u64 * d as u64 * 4;
        assert!(
            m.dram_write_bytes >= msg_bytes / 2,
            "message buffer must dominate writes: {} vs E*D = {msg_bytes}",
            m.dram_write_bytes
        );
    }

    #[test]
    fn scatter_issues_edge_times_dim_atomics() {
        let g = barabasi_albert(300, 4, 4).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let d = 16;
        let m = launch(&engine, &ScatterKernel::new(&g, d)).expect("runs");
        assert_eq!(m.atomic_ops, g.num_edges() as u64 * d as u64);
    }

    #[test]
    fn cost_grows_superlinearly_with_dim() {
        let g = barabasi_albert(300, 4, 4).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let lo = launch(&engine, &GatherKernel::new(&g, 16)).expect("runs");
        let hi = launch(&engine, &GatherKernel::new(&g, 512)).expect("runs");
        assert!(
            hi.time_ms > lo.time_ms * 4.0,
            "hi={} lo={}",
            hi.time_ms,
            lo.time_ms
        );
    }
}
