//! Aggregation kernels on the simulated GPU.
//!
//! - [`advisor`]: GNNAdvisor's group-based kernel (Sections 5 and 6.2).
//! - [`node_centric`], [`edge_centric`]: the two extremes of Figure 4 that
//!   group-based partitioning interpolates between.
//! - [`spmm_dgl`]: the DGL baseline — input-oblivious row-per-warp fused
//!   SpMM plus a feature-stacking pass.
//! - [`scatter_pyg`]: the PyG baseline — materialize per-edge messages,
//!   then atomic scatter-reduce.
//! - [`advance_gunrock`]: the GunRock baseline — frontier advance with
//!   scalar per-(edge, dim) operators.
//! - [`saga_neugraph`]: the NeuGraph baseline — SAGA dataflow with chunked
//!   host↔device streaming.
//!
//! All kernels read the same [`arrays`] address space so cross-kernel cache
//! behaviour is comparable.

pub mod advance_gunrock;
pub mod advisor;
pub mod attention;
pub mod edge_centric;
pub mod node_centric;
pub mod saga_neugraph;
pub mod scatter_pyg;
pub mod spmm_dgl;

/// Shared simulated-memory array ids.
pub mod arrays {
    use gnnadvisor_gpu::ArrayId;

    /// CSR row pointers.
    pub const ROW_PTR: ArrayId = ArrayId(0);
    /// CSR column indices (neighbor ids).
    pub const COL_IDX: ArrayId = ArrayId(1);
    /// Input node-feature matrix (N x D, row-major f32).
    pub const FEAT_IN: ArrayId = ArrayId(2);
    /// Output aggregation buffer (N x D).
    pub const FEAT_OUT: ArrayId = ArrayId(3);
    /// Per-edge message buffer (E x D) used by the PyG-style baseline.
    pub const MSG_BUF: ArrayId = ArrayId(4);
    /// COO source-row array used by edge-parallel baselines.
    pub const EDGE_SRC: ArrayId = ArrayId(5);
}

/// Bytes of one `f32`.
pub(crate) const F32: u64 = 4;
