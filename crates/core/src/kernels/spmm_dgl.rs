//! DGL-style baseline: fused row-per-warp SpMM plus feature stacking.
//!
//! DGL's SUM-aggregation path fuses send/recv into a cuSparse-style SpMM:
//! one warp owns one output row, its 32 lanes sweep the embedding
//! dimensions, and neighbors stream through with coalesced row reads — a
//! solid generic kernel. What it lacks is exactly what the paper exploits:
//! no input-aware group sizing (warp workload is the node's full degree, so
//! power-law inputs imbalance the block), no shared-memory staging, no
//! renumbering, and a per-layer feature-stacking pass ("batch processing of
//! nodes/edges by stacking their features") that moves N x D twice.

use gnnadvisor_gpu::kernel::WARP_SIZE;
use gnnadvisor_gpu::{BlockSink, GridConfig, Kernel};
use gnnadvisor_graph::{Csr, NodeId};

use crate::kernels::arrays;
use crate::kernels::F32;

/// Warps (rows) per block in the SpMM kernel.
const WARPS_PER_BLOCK: usize = 8;

/// Row-per-warp CSR SpMM aggregation (the DGL kernel-fusion path).
pub struct SpmmKernel<'a> {
    graph: &'a Csr,
    dim: usize,
}

impl<'a> SpmmKernel<'a> {
    /// SpMM over the whole graph at dimensionality `dim`.
    pub fn new(graph: &'a Csr, dim: usize) -> Self {
        Self { graph, dim }
    }
}

impl Kernel for SpmmKernel<'_> {
    fn name(&self) -> &str {
        "dgl_spmm_aggregation"
    }

    fn grid(&self) -> GridConfig {
        GridConfig {
            num_blocks: self.graph.num_nodes().div_ceil(WARPS_PER_BLOCK).max(1),
            threads_per_block: (WARPS_PER_BLOCK as u32) * WARP_SIZE,
            shared_mem_bytes: 0,
        }
    }

    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        let n = self.graph.num_nodes();
        let start = block_id * WARPS_PER_BLOCK;
        let end = (start + WARPS_PER_BLOCK).min(n);
        let row_bytes = self.dim as u64 * F32;
        let lanes_active = (self.dim as u32).min(WARP_SIZE);

        for v in start..end {
            let v = v as NodeId;
            sink.begin_warp();
            let deg = self.graph.degree(v);
            if deg == 0 {
                continue;
            }
            // Row pointer + neighbor list, coalesced.
            sink.global_read(arrays::ROW_PTR, v as u64 * 4, 8);
            let row_start = self.graph.row_ptr()[v as usize] as u64;
            sink.global_read(arrays::COL_IDX, row_start * 4, deg as u64 * 4);

            // Stream neighbor rows: warp-wide coalesced reads, lanes sweep
            // dimensions. Lanes beyond D idle (useful = min(D, 32)).
            for &u in self.graph.neighbors(v) {
                sink.global_read_strided(
                    arrays::FEAT_IN,
                    u as u64 * row_bytes,
                    row_bytes,
                    row_bytes.div_ceil(128),
                    lanes_active,
                );
            }
            // The warp's compute is its node's whole degree: no group
            // sizing, so the block's critical path is its max-degree row.
            sink.compute(
                deg as u64 * self.dim.div_ceil(WARP_SIZE as usize) as u64,
                lanes_active,
            );

            // One warp owns the row: plain coalesced write, no atomics.
            sink.global_write(arrays::FEAT_OUT, v as u64 * row_bytes, row_bytes);
        }
    }
}

/// The feature-stacking / batching pass DGL runs around aggregation: one
/// full copy of the N x D feature matrix (read + write).
pub struct StackingKernel {
    num_rows: usize,
    dim: usize,
}

impl StackingKernel {
    /// Copies `num_rows x dim` features.
    pub fn new(num_rows: usize, dim: usize) -> Self {
        Self { num_rows, dim }
    }
}

impl Kernel for StackingKernel {
    fn name(&self) -> &str {
        "dgl_feature_stacking"
    }

    fn grid(&self) -> GridConfig {
        // 256-thread blocks, one thread per element chunk.
        let elems = self.num_rows * self.dim;
        GridConfig {
            num_blocks: elems.div_ceil(256 * 4).max(1),
            threads_per_block: 256,
            shared_mem_bytes: 0,
        }
    }

    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        let total_bytes = (self.num_rows * self.dim) as u64 * F32;
        let chunk = 256 * 4 * F32;
        let offset = block_id as u64 * chunk;
        if offset >= total_bytes {
            return;
        }
        let bytes = chunk.min(total_bytes - offset);
        // 8 warps stream the chunk: perfectly coalesced copy.
        for w in 0..8u64 {
            sink.begin_warp();
            let wb = bytes / 8;
            sink.global_read(arrays::FEAT_IN, offset + w * wb, wb);
            sink.global_write(arrays::MSG_BUF, offset + w * wb, wb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submit::launch;
    use gnnadvisor_gpu::{Engine, GpuSpec};
    use gnnadvisor_graph::generators::{barabasi_albert, erdos_renyi};

    #[test]
    fn spmm_uses_no_atomics() {
        let g = barabasi_albert(400, 4, 2).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let m = launch(&engine, &SpmmKernel::new(&g, 32)).expect("runs");
        assert_eq!(m.atomic_ops, 0);
        assert!(m.dram_read_bytes > 0);
    }

    #[test]
    fn power_law_imbalance_shows_in_efficiency() {
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let skewed = barabasi_albert(2000, 3, 7).expect("valid");
        let flat = erdos_renyi(2000, 6000, 7).expect("valid");
        let m_skew = launch(&engine, &SpmmKernel::new(&skewed, 32)).expect("runs");
        let m_flat = launch(&engine, &SpmmKernel::new(&flat, 32)).expect("runs");
        assert!(m_skew.sm_efficiency < m_flat.sm_efficiency);
    }

    #[test]
    fn stacking_moves_full_matrix() {
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let m = launch(&engine, &StackingKernel::new(1000, 64)).expect("runs");
        let matrix_bytes = 1000 * 64 * 4;
        assert!(m.dram_read_bytes + m.dram_write_bytes >= matrix_bytes as u64);
    }
}
