//! NeuGraph-style baseline: SAGA dataflow with chunked streaming.
//!
//! NeuGraph partitions the graph into vertex chunks sized to the device
//! memory budget and streams each chunk over PCIe per layer, running its
//! Scatter → ApplyEdge → Gather → ApplyVertex stages on device. Table 2
//! reports the two halves separately ("Mem.IO" vs "Comp."); this module
//! reproduces both: [`SagaChunkKernel`] prices one chunk's SAGA compute and
//! [`run_saga_layer`] adds the transfer schedule.

use gnnadvisor_gpu::kernel::WARP_SIZE;
use gnnadvisor_gpu::{BlockSink, Engine, GridConfig, Kernel, RunMetrics};
use gnnadvisor_graph::{Csr, NodeId};

use crate::kernels::arrays;
use crate::kernels::F32;
use crate::Result;

/// One chunk's SAGA compute: two edge passes (Scatter + Gather, with
/// ApplyEdge fused) and one vertex pass (ApplyVertex), row-per-warp without
/// input-aware sizing — NeuGraph "relies on general GPU kernel
/// optimizations and largely ignores the input information".
pub struct SagaChunkKernel<'a> {
    graph: &'a Csr,
    /// Node range `[start, end)` of this chunk.
    node_start: usize,
    node_end: usize,
    dim: usize,
}

impl<'a> SagaChunkKernel<'a> {
    /// SAGA over the chunk `[node_start, node_end)`.
    pub fn new(graph: &'a Csr, node_start: usize, node_end: usize, dim: usize) -> Self {
        Self {
            graph,
            node_start,
            node_end: node_end.min(graph.num_nodes()),
            dim,
        }
    }

    fn chunk_nodes(&self) -> usize {
        self.node_end.saturating_sub(self.node_start)
    }
}

/// Rows (warps) per block, matching the DGL-style generic mapping.
const WARPS_PER_BLOCK: usize = 8;

impl Kernel for SagaChunkKernel<'_> {
    fn name(&self) -> &str {
        "neugraph_saga_chunk"
    }

    fn grid(&self) -> GridConfig {
        GridConfig {
            num_blocks: self.chunk_nodes().div_ceil(WARPS_PER_BLOCK).max(1),
            threads_per_block: (WARPS_PER_BLOCK as u32) * WARP_SIZE,
            shared_mem_bytes: 0,
        }
    }

    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        let start = self.node_start + block_id * WARPS_PER_BLOCK;
        let end = (start + WARPS_PER_BLOCK).min(self.node_end);
        let row_bytes = self.dim as u64 * F32;
        let lanes_active = (self.dim as u32).min(WARP_SIZE);

        for v in start..end {
            let v = v as NodeId;
            sink.begin_warp();
            let deg = self.graph.degree(v);
            sink.global_read(arrays::ROW_PTR, v as u64 * 4, 8);
            if deg == 0 {
                continue;
            }
            let row_start = self.graph.row_ptr()[v as usize] as u64;
            sink.global_read(arrays::COL_IDX, row_start * 4, deg as u64 * 4);

            // Scatter pass: read each neighbor row, write an edge-value
            // buffer (SAGA materializes edge state between stages).
            for &u in self.graph.neighbors(v) {
                sink.global_read_strided(
                    arrays::FEAT_IN,
                    u as u64 * row_bytes,
                    row_bytes,
                    row_bytes.div_ceil(128),
                    lanes_active,
                );
            }
            sink.global_write(
                arrays::MSG_BUF,
                row_start * row_bytes,
                deg as u64 * row_bytes,
            );

            // Gather pass: stream the edge buffer back, reduce into the row.
            sink.global_read(
                arrays::MSG_BUF,
                row_start * row_bytes,
                deg as u64 * row_bytes,
            );
            sink.compute(
                2 * deg as u64 * self.dim.div_ceil(WARP_SIZE as usize) as u64,
                lanes_active,
            );

            // ApplyVertex: write the result row.
            sink.global_write(arrays::FEAT_OUT, v as u64 * row_bytes, row_bytes);
        }
    }
}

/// Streams one GNN layer NeuGraph-style: node chunks sized to
/// `chunk_budget_bytes` of feature memory are copied host→device, SAGA runs
/// per chunk, and results are copied back. Returns combined transfer
/// ("Mem.IO") and kernel ("Comp.") metrics.
pub fn run_saga_layer(
    engine: &Engine,
    graph: &Csr,
    dim: usize,
    chunk_budget_bytes: u64,
) -> Result<RunMetrics> {
    let mut run = RunMetrics::default();
    let row_bytes = dim as u64 * F32;
    let nodes_per_chunk =
        ((chunk_budget_bytes / row_bytes.max(1)).max(1) as usize).min(graph.num_nodes().max(1));

    let mut start = 0usize;
    while start < graph.num_nodes() {
        let end = (start + nodes_per_chunk).min(graph.num_nodes());
        let chunk_edges = graph.row_ptr()[end] - graph.row_ptr()[start];
        // Host -> device: chunk target features, the *source* features its
        // edges reference (conservatively one row per edge — NeuGraph ships
        // whole source chunks, which is at least this much), and topology.
        let h2d = (end - start) as u64 * row_bytes
            + (chunk_edges as u64 * row_bytes).min(graph.num_nodes() as u64 * row_bytes)
            + chunk_edges as u64 * 4;
        run.push_transfer(crate::submit::transfer(engine, h2d));

        let kernel = SagaChunkKernel::new(graph, start, end, dim);
        run.push_kernel(crate::submit::launch(engine, &kernel)?);

        // Device -> host: chunk results.
        run.push_transfer(crate::submit::transfer(
            engine,
            (end - start) as u64 * row_bytes,
        ));
        start = end;
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submit::launch;
    use gnnadvisor_gpu::GpuSpec;
    use gnnadvisor_graph::generators::barabasi_albert;

    #[test]
    fn chunking_covers_all_nodes() {
        let g = barabasi_albert(1000, 4, 8).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        // Budget of 100 rows -> 10 chunks.
        let run = run_saga_layer(&engine, &g, 32, 100 * 32 * 4).expect("runs");
        assert_eq!(run.kernels.len(), 10);
        assert!(run.transfer_ms > 0.0);
        assert!(run.compute_ms > 0.0);
    }

    #[test]
    fn smaller_budget_more_io() {
        let g = barabasi_albert(1000, 4, 8).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let coarse = run_saga_layer(&engine, &g, 32, 1 << 30).expect("runs");
        let fine = run_saga_layer(&engine, &g, 32, 50 * 32 * 4).expect("runs");
        assert!(
            fine.transfer_ms > coarse.transfer_ms,
            "more chunks => more PCIe latency: {} vs {}",
            fine.transfer_ms,
            coarse.transfer_ms
        );
    }

    #[test]
    fn edge_buffer_doubles_traffic_vs_spmm() {
        use crate::kernels::spmm_dgl::SpmmKernel;
        let g = barabasi_albert(500, 5, 9).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let saga = launch(&engine, &SagaChunkKernel::new(&g, 0, 500, 64)).expect("runs");
        let spmm = launch(&engine, &SpmmKernel::new(&g, 64)).expect("runs");
        assert!(
            saga.dram_bytes() > spmm.dram_bytes(),
            "SAGA stages edge state in memory"
        );
    }
}
