//! Extraction of graph-level and architecture-level input information.

use gnnadvisor_graph::stats::DegreeStats;
use gnnadvisor_graph::Csr;
use serde::{Deserialize, Serialize};

/// Where the dense update sits relative to aggregation (Section 4.2).
///
/// GCN-class models reduce the embedding dimension *before* aggregating, so
/// aggregation runs at the small hidden dimension; GIN-class models must
/// aggregate at full dimension first because the edge/self weighting needs
/// the raw embeddings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggOrder {
    /// Update (dimension reduction) first, then aggregate — GCN.
    UpdateThenAggregate,
    /// Aggregate at full dimension, then update — GIN / GAT.
    AggregateThenUpdate,
}

/// The input-level information GNNAdvisor's extractor collects (Section 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputInfo {
    /// Number of nodes `N`.
    pub num_nodes: usize,
    /// Number of directed edges `E`.
    pub num_edges: usize,
    /// Mean node degree `E / N`.
    pub avg_degree: f64,
    /// Standard deviation of node degree — feeds the analytical model's
    /// `alpha` (Section 7.1).
    pub degree_stddev: f64,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Input feature dimensionality (Table 1 "#Dim").
    pub feat_dim: usize,
    /// Hidden-layer embedding dimensionality of the GNN.
    pub hidden_dim: usize,
    /// Output classes (Table 1 "#Cls").
    pub num_classes: usize,
    /// Aggregation order of the architecture (Section 4.2).
    pub agg_order: AggOrder,
}

impl InputInfo {
    /// The dimensionality at which the *aggregation* kernel runs: GCN
    /// aggregates after dimension reduction, GIN before.
    pub fn aggregation_dim(&self) -> usize {
        match self.agg_order {
            AggOrder::UpdateThenAggregate => self.hidden_dim,
            AggOrder::AggregateThenUpdate => self.feat_dim,
        }
    }

    /// The `alpha` of Eq. 2, scaled within the paper's stated 0.15–0.3
    /// range by degree skew: `alpha = 0.15 + 0.15 * min(1, cv)` where `cv`
    /// is the coefficient of variation of node degree ("the larger
    /// stddev_degree is, the higher the value of alpha becomes").
    pub fn alpha(&self) -> f64 {
        let cv = if self.avg_degree > 0.0 {
            self.degree_stddev / self.avg_degree
        } else {
            0.0
        };
        0.15 + 0.15 * cv.min(1.0)
    }
}

/// Extracts input information from a graph plus architecture facts.
pub fn extract(
    graph: &Csr,
    feat_dim: usize,
    hidden_dim: usize,
    num_classes: usize,
    agg_order: AggOrder,
) -> InputInfo {
    let stats = DegreeStats::of(graph);
    InputInfo {
        num_nodes: graph.num_nodes(),
        num_edges: graph.num_edges(),
        avg_degree: stats.mean,
        degree_stddev: stats.stddev,
        max_degree: stats.max,
        feat_dim,
        hidden_dim,
        num_classes,
        agg_order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_graph::GraphBuilder;

    fn star() -> Csr {
        GraphBuilder::new(9)
            .star(0, &[1, 2, 3, 4, 5, 6, 7, 8])
            .build()
            .expect("valid")
    }

    #[test]
    fn extracts_basic_stats() {
        let info = extract(&star(), 128, 16, 7, AggOrder::UpdateThenAggregate);
        assert_eq!(info.num_nodes, 9);
        assert_eq!(info.num_edges, 16);
        assert_eq!(info.max_degree, 8);
        assert!(info.degree_stddev > 1.0);
    }

    #[test]
    fn aggregation_dim_follows_order() {
        let gcn = extract(&star(), 128, 16, 7, AggOrder::UpdateThenAggregate);
        assert_eq!(gcn.aggregation_dim(), 16, "GCN aggregates at hidden dim");
        let gin = extract(&star(), 128, 64, 7, AggOrder::AggregateThenUpdate);
        assert_eq!(
            gin.aggregation_dim(),
            128,
            "GIN aggregates at full input dim"
        );
    }

    #[test]
    fn alpha_in_paper_range_and_monotone() {
        let skewed = extract(&star(), 8, 8, 2, AggOrder::UpdateThenAggregate);
        let regular_graph = GraphBuilder::new(4)
            .clique(&[0, 1, 2, 3])
            .build()
            .expect("valid");
        let regular = extract(&regular_graph, 8, 8, 2, AggOrder::UpdateThenAggregate);
        for a in [skewed.alpha(), regular.alpha()] {
            assert!(
                (0.15..=0.3).contains(&a),
                "alpha {a} outside the paper's band"
            );
        }
        assert!(
            skewed.alpha() > regular.alpha(),
            "higher stddev must raise alpha"
        );
        assert!(
            (regular.alpha() - 0.15).abs() < 1e-12,
            "zero stddev pins alpha at 0.15"
        );
    }
}
