//! Input extractor (Section 4): the input-level information that drives
//! every downstream optimization decision.

pub mod extractor;

pub use extractor::{extract, AggOrder, InputInfo};
