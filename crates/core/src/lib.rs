//! The GNNAdvisor runtime (the paper's primary contribution).
//!
//! Pipeline, mirroring Figure 1 of the paper:
//!
//! 1. **Input extractor** ([`input`]) squeezes input-level information out
//!    of the graph and the GNN architecture: node count, edge count, degree
//!    mean/stddev, embedding dimensionality, aggregation order.
//! 2. **Performance evaluator** ([`tuning`]) turns that information into
//!    runtime parameters — group size `gs`, threads-per-block `tpb`,
//!    dimension workers `dw` — either analytically (Section 7.1, Eq. 2–4)
//!    or with the evolutionary *Estimating* search (Section 7.2).
//! 3. **Kernel & runtime crafter** ([`workload`], [`memory`], [`kernels`])
//!    builds the group-based workload (Section 5), the block-aware shared
//!    memory layout (Section 6.2, Algorithm 1), optionally applies
//!    community-aware node renumbering (Section 6.1), and launches the
//!    GNNAdvisor aggregation kernel on the simulated GPU.
//!
//! The same crate also implements every baseline execution strategy the
//! paper compares against ([`kernels`], [`frameworks`]): node-centric and
//! edge-centric aggregation (Figure 4), DGL-style fused SpMM, PyG-style
//! scatter–gather, GunRock-style frontier advance, and NeuGraph-style SAGA
//! chunk streaming — all running on the same simulator so comparisons are
//! apples-to-apples.
//!
//! Numerical semantics are implemented separately in [`compute`]: kernels
//! are cost emitters, while [`compute`] produces the actual aggregation
//! values; property tests assert the grouped execution order computes
//! exactly what the sequential reference does.

pub mod cluster;
pub mod compute;
pub mod dynamic;
pub mod frameworks;
pub mod input;
pub mod kernels;
pub mod memory;
pub mod minibatch;
pub mod multi_gpu;
pub mod runtime;
pub mod serving;
mod submit;
pub mod tuning;
pub mod workload;

pub use frameworks::Framework;
pub use input::{AggOrder, InputInfo};
pub use runtime::{Advisor, AdvisorConfig};
pub use tuning::params::RuntimeParams;
pub use workload::group::NeighborGroup;

/// The unified error type of the runtime stack: one public enum with one
/// variant per layer (graph, tensor, gpu, runtime params, serving), so no
/// stringly-typed error crosses a crate boundary. The facade crate
/// re-exports this as its root error type.
#[derive(Debug)]
pub enum CoreError {
    /// Invalid runtime parameters (e.g. zero group size).
    InvalidParams {
        /// Human-readable description.
        reason: String,
    },
    /// Propagated graph-substrate error.
    Graph(gnnadvisor_graph::GraphError),
    /// Propagated simulator error.
    Gpu(gnnadvisor_gpu::GpuError),
    /// Propagated tensor error.
    Tensor(gnnadvisor_tensor::TensorError),
    /// Invalid serving configuration (queue, batcher, or arrival policy).
    Serving {
        /// Human-readable description.
        reason: String,
    },
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::InvalidParams { reason } => write!(f, "invalid runtime params: {reason}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Gpu(e) => write!(f, "gpu error: {e}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Serving { reason } => write!(f, "serving error: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<gnnadvisor_graph::GraphError> for CoreError {
    fn from(e: gnnadvisor_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<gnnadvisor_gpu::GpuError> for CoreError {
    fn from(e: gnnadvisor_gpu::GpuError) -> Self {
        CoreError::Gpu(e)
    }
}

impl From<gnnadvisor_tensor::TensorError> for CoreError {
    fn from(e: gnnadvisor_tensor::TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

/// Crate-local result alias.
pub type Result<T> = core::result::Result<T, CoreError>;
