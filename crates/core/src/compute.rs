//! Numerical aggregation semantics.
//!
//! The kernels in [`crate::kernels`] are *cost emitters* for the simulated
//! GPU; this module computes the actual aggregation values, both as a
//! straightforward sequential reference and as a grouped execution that
//! follows the group partition + leader-node order exactly. Property tests
//! assert the two agree bit-for-bit modulo float associativity (we use the
//! same accumulation order per node, so they agree exactly).

use gnnadvisor_graph::{Csr, NodeId};
use gnnadvisor_tensor::Matrix;

use crate::workload::group::NeighborGroup;

/// Aggregation operator variants covering the paper's two GNN classes
/// (Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Aggregation {
    /// Plain neighbor sum (GIN's aggregate; the self term is applied by the
    /// model layer as `(1 + eps) * h_v`).
    Sum,
    /// GCN symmetric normalization: each neighbor contribution is scaled by
    /// `1 / sqrt((deg(v) + 1) (deg(u) + 1))` and the self term by
    /// `1 / (deg(v) + 1)` (renormalization-trick self-loop).
    GcnNorm,
    /// Mean of neighbors (GraphSage's default aggregator).
    Mean,
}

/// Sequential reference aggregation: `out[v] = op({ h_u : u in N(v) })`.
///
/// # Panics
///
/// Panics if `features.rows() != graph.num_nodes()`.
pub fn aggregate_reference(graph: &Csr, features: &Matrix, op: Aggregation) -> Matrix {
    assert_eq!(
        features.rows(),
        graph.num_nodes(),
        "feature rows must match node count"
    );
    let d = features.cols();
    let mut out = Matrix::zeros(graph.num_nodes(), d);
    for v in 0..graph.num_nodes() as NodeId {
        let row_out = out.row_mut(v as usize);
        for &u in graph.neighbors(v) {
            let w = edge_weight(graph, v, u, op);
            for (o, &x) in row_out.iter_mut().zip(features.row(u as usize)) {
                *o += w * x;
            }
        }
        if let Aggregation::GcnNorm = op {
            // Self-loop term of the renormalized adjacency.
            let w = 1.0 / (graph.degree(v) as f32 + 1.0);
            for (o, &x) in row_out.iter_mut().zip(features.row(v as usize)) {
                *o += w * x;
            }
        }
        if let Aggregation::Mean = op {
            let deg = graph.degree(v);
            if deg > 0 {
                let inv = 1.0 / deg as f32;
                for o in row_out.iter_mut() {
                    *o *= inv;
                }
            }
        }
    }
    out
}

/// Grouped aggregation: every group accumulates privately (one thread's
/// registers), then pushes into its node's row in group order (the
/// leader-node flush). Because groups of one node appear in CSR order and
/// are reduced in that order, the result is *identical* to
/// [`aggregate_reference`], which the property suite asserts.
pub fn aggregate_grouped(
    graph: &Csr,
    features: &Matrix,
    groups: &[NeighborGroup],
    op: Aggregation,
) -> Matrix {
    assert_eq!(
        features.rows(),
        graph.num_nodes(),
        "feature rows must match node count"
    );
    let d = features.cols();
    let col_idx = graph.col_idx();
    let mut out = Matrix::zeros(graph.num_nodes(), d);
    let mut acc = vec![0.0f32; d];
    for g in groups {
        acc.iter_mut().for_each(|a| *a = 0.0);
        for &u in &col_idx[g.start as usize..g.end as usize] {
            let w = edge_weight(graph, g.node, u, op);
            for (a, &x) in acc.iter_mut().zip(features.row(u as usize)) {
                *a += w * x;
            }
        }
        // Leader flush: atomic adds into the node row.
        for (o, &a) in out.row_mut(g.node as usize).iter_mut().zip(&acc) {
            *o += a;
        }
    }
    // Epilogues that need the full neighbor set.
    for v in 0..graph.num_nodes() {
        match op {
            Aggregation::GcnNorm => {
                let w = 1.0 / (graph.degree(v as NodeId) as f32 + 1.0);
                // Cannot hold two &mut rows; copy the self feature first.
                let self_row: Vec<f32> = features.row(v).to_vec();
                for (o, x) in out.row_mut(v).iter_mut().zip(self_row) {
                    *o += w * x;
                }
            }
            Aggregation::Mean => {
                let deg = graph.degree(v as NodeId);
                if deg > 0 {
                    let inv = 1.0 / deg as f32;
                    for o in out.row_mut(v).iter_mut() {
                        *o *= inv;
                    }
                }
            }
            Aggregation::Sum => {}
        }
    }
    out
}

/// Edge-weighted aggregation: `out[v] = sum_{e=(v,u)} w[e] * h_u`, with
/// `weights` indexed by CSR edge position — the numerical core of GAT's
/// attention-weighted neighbor sum.
///
/// # Panics
///
/// Panics if `weights.len() != graph.num_edges()` or the feature shape
/// mismatches.
pub fn aggregate_weighted(graph: &Csr, features: &Matrix, weights: &[f32]) -> Matrix {
    assert_eq!(
        features.rows(),
        graph.num_nodes(),
        "feature rows must match node count"
    );
    assert_eq!(weights.len(), graph.num_edges(), "one weight per CSR edge");
    let d = features.cols();
    let row_ptr = graph.row_ptr();
    let col_idx = graph.col_idx();
    let mut out = Matrix::zeros(graph.num_nodes(), d);
    for v in 0..graph.num_nodes() {
        let row_out = out.row_mut(v);
        for e in row_ptr[v]..row_ptr[v + 1] {
            let u = col_idx[e] as usize;
            let w = weights[e];
            for (o, &x) in row_out.iter_mut().zip(features.row(u)) {
                *o += w * x;
            }
        }
    }
    out
}

/// GCN-normalized aggregation over a sampled sub-block, with the
/// normalization degrees supplied explicitly:
///
/// `out[v] = Σ_{u ∈ N_graph(v)} x_u / sqrt((deg[v]+1)(deg[u]+1))
///           + x_v / (deg[v]+1)`
///
/// Sampled blocks are directed (node `v` keeps edge `v -> u` without `u`
/// necessarily keeping `u -> v`), so the renormalized adjacency `Â` is
/// asymmetric and its GCN weights must be recomputed from the *block's*
/// degrees, not the base graph's. Pass the block itself plus its row
/// degrees for the forward product `Â x`; pass the block's **transpose**
/// with the *same* forward degrees for the backward product `Âᵀ x` (the
/// weight formula is symmetric in `(v, u)`, so transposing the structure
/// while keeping the degrees yields exactly the transposed operator).
///
/// On an undirected graph with `degrees[v] == graph.degree(v)` this
/// reduces bit-for-bit to [`aggregate_reference`] with
/// [`Aggregation::GcnNorm`].
///
/// # Panics
///
/// Panics if `features.rows()` or `degrees.len()` mismatch the node
/// count.
pub fn aggregate_gcn_block(graph: &Csr, degrees: &[usize], features: &Matrix) -> Matrix {
    assert_eq!(
        features.rows(),
        graph.num_nodes(),
        "feature rows must match node count"
    );
    assert_eq!(
        degrees.len(),
        graph.num_nodes(),
        "one normalization degree per node"
    );
    let d = features.cols();
    let mut out = Matrix::zeros(graph.num_nodes(), d);
    for v in 0..graph.num_nodes() as NodeId {
        let dv = degrees[v as usize] as f32 + 1.0;
        let row_out = out.row_mut(v as usize);
        for &u in graph.neighbors(v) {
            let du = degrees[u as usize] as f32 + 1.0;
            let w = 1.0 / (dv * du).sqrt();
            for (o, &x) in row_out.iter_mut().zip(features.row(u as usize)) {
                *o += w * x;
            }
        }
        // Self-loop term of the renormalized adjacency (diagonal, so it
        // is its own transpose and appears identically in both passes).
        let w = 1.0 / dv;
        for (o, &x) in row_out.iter_mut().zip(features.row(v as usize)) {
            *o += w * x;
        }
    }
    out
}

#[inline]
fn edge_weight(graph: &Csr, v: NodeId, u: NodeId, op: Aggregation) -> f32 {
    match op {
        Aggregation::Sum | Aggregation::Mean => 1.0,
        Aggregation::GcnNorm => {
            let dv = graph.degree(v) as f32 + 1.0;
            let du = graph.degree(u) as f32 + 1.0;
            1.0 / (dv * du).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::group::partition_groups;
    use gnnadvisor_graph::generators::barabasi_albert;
    use gnnadvisor_graph::GraphBuilder;
    use gnnadvisor_tensor::init::random_features;

    #[test]
    fn sum_on_path() {
        let g = GraphBuilder::new(3)
            .path(&[0, 1, 2])
            .build()
            .expect("valid");
        let f = Matrix::from_fn(3, 2, |r, _| r as f32 + 1.0);
        let out = aggregate_reference(&g, &f, Aggregation::Sum);
        assert_eq!(out.row(0), &[2.0, 2.0], "node 0 sums node 1");
        assert_eq!(out.row(1), &[4.0, 4.0], "node 1 sums nodes 0 and 2");
    }

    #[test]
    fn mean_divides_by_degree() {
        let g = GraphBuilder::new(3)
            .star(0, &[1, 2])
            .build()
            .expect("valid");
        let f = Matrix::from_fn(3, 1, |r, _| r as f32);
        let out = aggregate_reference(&g, &f, Aggregation::Mean);
        assert_eq!(out.get(0, 0), 1.5, "(1 + 2) / 2");
        assert_eq!(out.get(1, 0), 0.0, "only neighbor is node 0 with value 0");
    }

    #[test]
    fn gcn_norm_includes_self() {
        let g = GraphBuilder::new(2)
            .undirected_edge(0, 1)
            .build()
            .expect("valid");
        let f = Matrix::from_fn(2, 1, |r, _| (r + 1) as f32);
        let out = aggregate_reference(&g, &f, Aggregation::GcnNorm);
        // deg+1 = 2 for both: neighbor weight 1/2, self weight 1/2.
        assert!((out.get(0, 0) - (0.5 * 2.0 + 0.5 * 1.0)).abs() < 1e-6);
    }

    #[test]
    fn grouped_equals_reference_all_ops() {
        let g = barabasi_albert(300, 4, 11).expect("valid");
        let f = random_features(300, 24, 5);
        for gs in [1, 3, 8, 64] {
            let groups = partition_groups(&g, gs).expect("valid");
            for op in [Aggregation::Sum, Aggregation::GcnNorm, Aggregation::Mean] {
                let a = aggregate_reference(&g, &f, op);
                let b = aggregate_grouped(&g, &f, &groups, op);
                assert!(
                    a.max_abs_diff(&b) < 1e-4,
                    "grouped execution diverged for gs={gs}, op={op:?}"
                );
            }
        }
    }

    #[test]
    fn block_norm_reduces_to_reference_on_undirected_graphs() {
        let g = barabasi_albert(120, 3, 21).expect("valid");
        let f = random_features(120, 8, 2);
        let degrees: Vec<usize> = (0..120u32).map(|v| g.degree(v)).collect();
        let a = aggregate_reference(&g, &f, Aggregation::GcnNorm);
        let b = aggregate_gcn_block(&g, &degrees, &f);
        assert_eq!(a, b, "undirected full graph: block norm == GcnNorm");
    }

    #[test]
    fn block_norm_transpose_is_the_adjoint() {
        // <Â x, y> == <x, Âᵀ y> for the directed operator: the transpose
        // structure with forward degrees is exactly the adjoint — the
        // identity mini-batch backward relies on.
        let block = Csr::from_raw(4, vec![0, 2, 3, 3, 4], vec![1, 2, 2, 0]).expect("valid");
        let degrees: Vec<usize> = (0..4u32).map(|v| block.degree(v)).collect();
        let bt = block.transpose();
        let x = random_features(4, 3, 7);
        let y = random_features(4, 3, 8);
        let ax = aggregate_gcn_block(&block, &degrees, &x);
        let aty = aggregate_gcn_block(&bt, &degrees, &y);
        let dot = |a: &Matrix, b: &Matrix| -> f64 {
            a.as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(&p, &q)| p as f64 * q as f64)
                .sum()
        };
        assert!(
            (dot(&ax, &y) - dot(&x, &aty)).abs() < 1e-5,
            "adjoint identity violated"
        );
        // And the naive symmetric shortcut is genuinely wrong here.
        let forward_again = aggregate_gcn_block(&block, &degrees, &y);
        assert!(forward_again != aty, "block is asymmetric, Â != Âᵀ");
    }

    #[test]
    fn isolated_node_outputs_zero_for_sum() {
        let g = GraphBuilder::new(3)
            .undirected_edge(0, 1)
            .build()
            .expect("valid");
        let f = Matrix::from_fn(3, 2, |_, _| 7.0);
        let out = aggregate_reference(&g, &f, Aggregation::Sum);
        assert_eq!(out.row(2), &[0.0, 0.0]);
        let out = aggregate_reference(&g, &f, Aggregation::Mean);
        assert_eq!(out.row(2), &[0.0, 0.0], "mean of no neighbors stays zero");
    }
}
