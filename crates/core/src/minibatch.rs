//! Host-side metadata cost model for sampling-based mini-batch training.
//!
//! The host-overheads study in PAPERS.md ("Understanding and Reducing
//! Metadata-Driven Host Overheads in Sampling-Based GNN Training") breaks
//! the host's per-batch work into three metadata phases that dominate GPU
//! compute at small hidden dims:
//!
//! 1. **neighbor sampling** — scanning candidate adjacency lists and
//!    drawing the kept subset (cost ∝ scanned base-graph edges),
//! 2. **CSR slicing** — relabeling the kept edges into a block-local CSR
//!    (cost ∝ kept block edges),
//! 3. **feature gathering** — copying the block's feature rows into a
//!    contiguous staging buffer (cost ∝ gathered bytes),
//!
//! plus a fixed per-batch overhead (allocator churn, framework dispatch,
//! queue handoff). [`HostCostModel`] prices those phases in simulated
//! milliseconds so the training pipeline can put host work on the same
//! clock as the device's stream schedule; the defaults are calibrated to
//! the study's qualitative regime — per-edge costs in the tens of
//! nanoseconds, gather at memcpy-like bandwidth, and a framework fixed
//! cost large enough that sampling machinery, not GPU math, bounds small
//! hidden-dim epochs. The model is pure arithmetic: deterministic at any
//! `GNNADVISOR_SIM_THREADS`.

use crate::{CoreError, Result};

/// Per-phase unit costs of the host's metadata work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostCostModel {
    /// Microseconds per base-graph adjacency entry examined while
    /// sampling (hash probes + RNG draws per candidate).
    pub sample_us_per_scanned_edge: f64,
    /// Microseconds per kept block edge relabeled into the block CSR.
    pub slice_us_per_block_edge: f64,
    /// Microseconds per kilobyte of feature rows gathered into the
    /// staging buffer (strided reads, so well below streaming memcpy).
    pub gather_us_per_kb: f64,
    /// Fixed per-batch overhead, microseconds (allocation, framework
    /// dispatch, pinned-buffer handoff).
    pub fixed_us_per_batch: f64,
}

impl Default for HostCostModel {
    fn default() -> Self {
        Self {
            sample_us_per_scanned_edge: 0.012,
            slice_us_per_block_edge: 0.020,
            gather_us_per_kb: 0.080,
            fixed_us_per_batch: 40.0,
        }
    }
}

/// One batch's host time, split by metadata phase (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HostPhases {
    /// Neighbor-sampling time, ms.
    pub sample_ms: f64,
    /// CSR-slicing time, ms.
    pub slice_ms: f64,
    /// Feature-gathering time, ms (includes the fixed per-batch cost).
    pub gather_ms: f64,
}

impl HostPhases {
    /// Total host time of the batch, ms.
    pub fn total_ms(&self) -> f64 {
        self.sample_ms + self.slice_ms + self.gather_ms
    }
}

impl HostCostModel {
    fn validate(&self) -> Result<()> {
        for (name, v) in [
            (
                "sample_us_per_scanned_edge",
                self.sample_us_per_scanned_edge,
            ),
            ("slice_us_per_block_edge", self.slice_us_per_block_edge),
            ("gather_us_per_kb", self.gather_us_per_kb),
            ("fixed_us_per_batch", self.fixed_us_per_batch),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(CoreError::InvalidParams {
                    reason: format!("host cost {name} must be finite and >= 0, got {v}"),
                });
            }
        }
        Ok(())
    }

    /// Prices one batch's host metadata work: `scanned_edges` base-graph
    /// adjacency entries examined, `block_edges` kept, `gather_bytes` of
    /// feature rows staged.
    pub fn charge(
        &self,
        scanned_edges: usize,
        block_edges: usize,
        gather_bytes: usize,
    ) -> Result<HostPhases> {
        self.validate()?;
        Ok(HostPhases {
            sample_ms: scanned_edges as f64 * self.sample_us_per_scanned_edge / 1e3,
            slice_ms: block_edges as f64 * self.slice_us_per_block_edge / 1e3,
            gather_ms: (gather_bytes as f64 / 1024.0 * self.gather_us_per_kb
                + self.fixed_us_per_batch)
                / 1e3,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_scale_with_their_drivers() {
        let m = HostCostModel::default();
        let small = m.charge(1_000, 500, 64 * 1024).expect("valid");
        let more_scan = m.charge(2_000, 500, 64 * 1024).expect("valid");
        let more_gather = m.charge(1_000, 500, 128 * 1024).expect("valid");
        assert!(more_scan.sample_ms > small.sample_ms);
        assert_eq!(more_scan.slice_ms, small.slice_ms);
        assert!(more_gather.gather_ms > small.gather_ms);
        assert!(small.total_ms() > 0.0);
    }

    #[test]
    fn empty_batch_still_pays_the_fixed_cost() {
        let m = HostCostModel::default();
        let p = m.charge(0, 0, 0).expect("valid");
        assert_eq!(p.sample_ms, 0.0);
        assert_eq!(p.slice_ms, 0.0);
        assert!((p.gather_ms - m.fixed_us_per_batch / 1e3).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_finite_rates() {
        let m = HostCostModel {
            gather_us_per_kb: f64::NAN,
            ..HostCostModel::default()
        };
        assert!(m.charge(1, 1, 1).is_err());
        let m = HostCostModel {
            fixed_us_per_batch: -1.0,
            ..HostCostModel::default()
        };
        assert!(m.charge(1, 1, 1).is_err());
    }
}
