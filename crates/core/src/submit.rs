//! Crate-internal shorthands over the typed submission API.
//!
//! Every device interaction in this crate goes through
//! [`Engine::submit`]; these helpers only fold the recurring
//! lock-context / wrap-workload / unwrap-metrics dance into one call so
//! pricing sites stay readable.

use gnnadvisor_gpu::{Engine, Kernel, KernelMetrics, TransferMetrics, Workload, WorkloadMetrics};

/// Prices one kernel launch on the engine's shared context.
pub(crate) fn launch(
    engine: &Engine,
    kernel: &dyn Kernel,
) -> gnnadvisor_gpu::Result<KernelMetrics> {
    engine
        .submit(&mut engine.lock_context(), Workload::Kernel(kernel))
        .map(WorkloadMetrics::into_kernel)
}

/// Prices one roofline GEMM on the engine's shared context.
pub(crate) fn gemm(engine: &Engine, m: usize, n: usize, k: usize) -> KernelMetrics {
    engine
        .submit(&mut engine.lock_context(), Workload::Gemm { m, n, k })
        .expect("gemm workloads are infallible")
        .into_kernel()
}

/// Prices one host↔device copy on the engine's shared context.
pub(crate) fn transfer(engine: &Engine, bytes: u64) -> TransferMetrics {
    engine
        .submit(&mut engine.lock_context(), Workload::Transfer { bytes })
        .expect("transfer workloads are infallible")
        .into_transfer()
}
