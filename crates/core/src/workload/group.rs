//! Group-based workload partitioning (Section 5.1).
//!
//! The neighbors of each node are broken into groups of at most
//! `group_size`; each group becomes the intra-group aggregation workload of
//! one thread (team). Groups of the same node appear consecutively, which
//! the leader-node scheme (Section 5.2) and Algorithm 1 rely on.

use gnnadvisor_graph::{Csr, NodeId};

use crate::{CoreError, Result};

/// One neighbor group: the aggregation workload of a single thread (team).
///
/// `start..end` index into the graph's `col_idx` array, so the group's
/// neighbor ids are `csr.col_idx()[start..end]` and its target node is
/// `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborGroup {
    /// The node this group aggregates into (the paper's "center node").
    pub node: NodeId,
    /// First edge index (inclusive) in `col_idx`.
    pub start: u32,
    /// Last edge index (exclusive).
    pub end: u32,
}

impl NeighborGroup {
    /// Number of neighbors in this group.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the group is empty (never produced by the partitioner).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Splits every node's neighbor list into groups of at most `group_size`.
///
/// Nodes with zero neighbors produce no groups (their aggregation result is
/// the zero vector, written by the epilogue). The concatenation of all
/// groups covers every edge exactly once, in CSR order — a property the
/// test suite checks with proptest.
///
/// # Examples
///
/// ```
/// use gnnadvisor_core::workload::group::partition_groups;
/// use gnnadvisor_graph::GraphBuilder;
///
/// // A star: the hub has 5 neighbors, each leaf has 1.
/// let g = GraphBuilder::new(6).star(0, &[1, 2, 3, 4, 5]).build().unwrap();
/// let groups = partition_groups(&g, 2).unwrap();
/// // Hub splits into ceil(5/2) = 3 groups; each leaf is one group.
/// assert_eq!(groups.len(), 3 + 5);
/// assert!(groups.iter().all(|grp| grp.len() <= 2));
/// ```
pub fn partition_groups(graph: &Csr, group_size: usize) -> Result<Vec<NeighborGroup>> {
    if group_size == 0 {
        return Err(CoreError::InvalidParams {
            reason: "group_size must be > 0".into(),
        });
    }
    let mut groups = Vec::with_capacity(graph.num_edges() / group_size + graph.num_nodes() / 2 + 1);
    let row_ptr = graph.row_ptr();
    for v in 0..graph.num_nodes() {
        let (s, e) = (row_ptr[v], row_ptr[v + 1]);
        let mut g = s;
        while g < e {
            let end = (g + group_size).min(e);
            groups.push(NeighborGroup {
                node: v as NodeId,
                start: g as u32,
                end: end as u32,
            });
            g = end;
        }
    }
    Ok(groups)
}

/// Workload statistics over a group partition, used by tests and reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupStats {
    /// Number of groups (threads).
    pub num_groups: usize,
    /// Largest group size.
    pub max_len: usize,
    /// Fraction of groups that are exactly `group_size` long.
    pub full_fraction: f64,
}

impl GroupStats {
    /// Computes statistics for a partition produced with `group_size`.
    pub fn of(groups: &[NeighborGroup], group_size: usize) -> Self {
        let num_groups = groups.len();
        let max_len = groups.iter().map(NeighborGroup::len).max().unwrap_or(0);
        let full = groups.iter().filter(|g| g.len() == group_size).count();
        Self {
            num_groups,
            max_len,
            full_fraction: if num_groups == 0 {
                0.0
            } else {
                full as f64 / num_groups as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_graph::generators::barabasi_albert;
    use gnnadvisor_graph::GraphBuilder;

    #[test]
    fn groups_cover_all_edges_in_order() {
        let g = barabasi_albert(200, 3, 1).expect("valid");
        let groups = partition_groups(&g, 4).expect("valid");
        let mut cursor = 0u32;
        for grp in &groups {
            assert_eq!(grp.start, cursor, "groups must tile col_idx contiguously");
            assert!(!grp.is_empty() && grp.len() <= 4);
            cursor = grp.end;
        }
        assert_eq!(cursor as usize, g.num_edges());
    }

    #[test]
    fn group_count_matches_ceil_division() {
        let g = GraphBuilder::new(3)
            .star(0, &[1, 2])
            .build()
            .expect("valid");
        // Node 0 has 2 neighbors, nodes 1 and 2 have 1 each.
        let groups = partition_groups(&g, 2).expect("valid");
        assert_eq!(groups.len(), 3);
        let groups = partition_groups(&g, 1).expect("valid");
        assert_eq!(groups.len(), 4);
    }

    #[test]
    fn groups_of_same_node_are_consecutive() {
        let g = barabasi_albert(100, 5, 2).expect("valid");
        let groups = partition_groups(&g, 2).expect("valid");
        let mut last_node_end: std::collections::HashMap<NodeId, bool> = Default::default();
        let mut prev: Option<NodeId> = None;
        for grp in &groups {
            if prev != Some(grp.node) {
                assert!(
                    !last_node_end.contains_key(&grp.node),
                    "node {} groups are split by another node's groups",
                    grp.node
                );
                if let Some(p) = prev {
                    last_node_end.insert(p, true);
                }
                prev = Some(grp.node);
            }
        }
    }

    #[test]
    fn balance_improves_with_grouping() {
        let g = GraphBuilder::new(65)
            .star(0, &(1..65).collect::<Vec<_>>())
            .build()
            .expect("valid");
        // Node-centric: max workload is 64; with group_size 4 the max is 4.
        let groups = partition_groups(&g, 4).expect("valid");
        let stats = GroupStats::of(&groups, 4);
        assert_eq!(stats.max_len, 4);
        assert!(stats.full_fraction > 0.1);
    }

    #[test]
    fn zero_group_size_rejected() {
        let g = GraphBuilder::new(2)
            .undirected_edge(0, 1)
            .build()
            .expect("valid");
        assert!(partition_groups(&g, 0).is_err());
    }

    #[test]
    fn isolated_nodes_produce_no_groups() {
        let g = GraphBuilder::new(5)
            .undirected_edge(0, 1)
            .build()
            .expect("valid");
        let groups = partition_groups(&g, 8).expect("valid");
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().all(|grp| !grp.is_empty()));
    }
}
