//! Block-based workload mapping (Section 5.3).
//!
//! Groups are packed into thread blocks: with `tpb` threads per block and
//! `dw` lanes per group-team, each block hosts `tpb / dw` consecutive
//! groups. Consecutive groups belong to nearby nodes (group partitioning
//! preserves CSR order), so after renumbering, the nodes a block touches
//! are neighbors in id space — the locality the shared cache rewards.

use crate::workload::group::NeighborGroup;

/// How groups map to thread blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMapping {
    /// Threads per block (`tpb`).
    pub threads_per_block: u32,
    /// Dimension workers per group (`dw`).
    pub dim_workers: u32,
    /// Total number of groups.
    pub num_groups: usize,
}

impl BlockMapping {
    /// Builds a mapping; both knobs are clamped to at least 1 and `dw` to
    /// at most `tpb`.
    pub fn new(threads_per_block: u32, dim_workers: u32, num_groups: usize) -> Self {
        let tpb = threads_per_block.max(1);
        Self {
            threads_per_block: tpb,
            dim_workers: dim_workers.clamp(1, tpb),
            num_groups,
        }
    }

    /// Groups hosted by each block (`tpb / dw`, at least 1).
    pub fn groups_per_block(&self) -> usize {
        ((self.threads_per_block / self.dim_workers) as usize).max(1)
    }

    /// Number of blocks in the launch.
    pub fn num_blocks(&self) -> usize {
        self.num_groups.div_ceil(self.groups_per_block()).max(1)
    }

    /// The group-index range `[start, end)` of `block`.
    pub fn block_range(&self, block: usize) -> (usize, usize) {
        let gpb = self.groups_per_block();
        let start = block * gpb;
        (
            start.min(self.num_groups),
            ((block + 1) * gpb).min(self.num_groups),
        )
    }

    /// Distinct target nodes among `groups[start..end)` of one block —
    /// the shared-memory slot count Algorithm 1 will allocate (runs of the
    /// same node share a slot).
    pub fn nodes_in_block(&self, groups: &[NeighborGroup], block: usize) -> usize {
        let (s, e) = self.block_range(block);
        let mut count = 0;
        let mut last = None;
        for g in &groups[s..e] {
            if last != Some(g.node) {
                count += 1;
                last = Some(g.node);
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::group::partition_groups;
    use gnnadvisor_graph::generators::barabasi_albert;

    #[test]
    fn ranges_tile_all_groups() {
        let m = BlockMapping::new(256, 8, 1000);
        assert_eq!(m.groups_per_block(), 32);
        assert_eq!(m.num_blocks(), 32);
        let mut covered = 0;
        for b in 0..m.num_blocks() {
            let (s, e) = m.block_range(b);
            assert_eq!(s, covered);
            covered = e;
        }
        assert_eq!(covered, 1000);
    }

    #[test]
    fn dw_reduces_groups_per_block() {
        let narrow = BlockMapping::new(256, 1, 100);
        let wide = BlockMapping::new(256, 32, 100);
        assert_eq!(narrow.groups_per_block(), 256);
        assert_eq!(wide.groups_per_block(), 8);
        assert!(wide.num_blocks() > narrow.num_blocks());
    }

    #[test]
    fn degenerate_inputs_clamped() {
        let m = BlockMapping::new(0, 0, 10);
        assert_eq!(m.threads_per_block, 1);
        assert_eq!(m.dim_workers, 1);
        assert_eq!(m.num_blocks(), 10);
        let empty = BlockMapping::new(128, 4, 0);
        assert_eq!(empty.num_blocks(), 1, "empty launches still get one block");
        assert_eq!(empty.block_range(0), (0, 0));
    }

    #[test]
    fn nodes_in_block_counts_runs() {
        let g = barabasi_albert(64, 4, 3).expect("valid");
        let groups = partition_groups(&g, 2).expect("valid");
        let m = BlockMapping::new(64, 4, groups.len());
        for b in 0..m.num_blocks() {
            let (s, e) = m.block_range(b);
            let distinct: std::collections::HashSet<_> =
                groups[s..e].iter().map(|g| g.node).collect();
            // Runs of the same node are contiguous, so run count == distinct
            // count here.
            assert_eq!(m.nodes_in_block(&groups, b), distinct.len());
        }
    }
}
