//! Dimension-based workload sharing (Section 5.4).
//!
//! A group's element-wise aggregation over a `D`-dimensional embedding is
//! spread across a *team* of `dw` adjacent lanes, each covering
//! `ceil(D / dw)` adjacent dimensions (the coalescing-friendly mapping of
//! Figure 6b: neighboring threads touch neighboring addresses).

use gnnadvisor_gpu::kernel::WARP_SIZE;

/// How a group's dimension work maps onto warp lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimensionPlan {
    /// Dimension workers per group (`dw`), clamped to the warp width.
    pub workers: u32,
    /// Embedding dimensionality `D`.
    pub dim: usize,
}

impl DimensionPlan {
    /// Builds a plan; `workers` is clamped to `1..=WARP_SIZE`.
    pub fn new(workers: u32, dim: usize) -> Self {
        Self {
            workers: workers.clamp(1, WARP_SIZE),
            dim,
        }
    }

    /// Dimensions each worker covers (`ceil(D / dw)`); the last worker may
    /// cover fewer.
    pub fn dims_per_worker(&self) -> usize {
        self.dim.div_ceil(self.workers as usize)
    }

    /// Workers that actually receive dimensions. When `dw > D`, the excess
    /// lanes idle — the over-provisioning penalty of Figure 11c.
    pub fn active_workers(&self) -> u32 {
        (self.workers as usize).min(self.dim).max(1) as u32
    }

    /// Memory transactions one team needs to read one embedding row: each
    /// load step covers `dw` adjacent floats (≤ 128 B per transaction).
    pub fn transactions_per_row(&self) -> u64 {
        self.dims_per_worker() as u64
    }

    /// Whole groups (teams) that fit in one warp.
    pub fn groups_per_warp(&self) -> u32 {
        (WARP_SIZE / self.workers).max(1)
    }

    /// Per-lane compute cycles to accumulate `neighbors` rows: one FMA per
    /// element handled by the lane.
    pub fn lane_cycles(&self, neighbors: usize) -> u64 {
        neighbors as u64 * self.dims_per_worker() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping() {
        assert_eq!(DimensionPlan::new(0, 16).workers, 1);
        assert_eq!(DimensionPlan::new(64, 16).workers, 32);
    }

    #[test]
    fn dims_split_evenly() {
        let p = DimensionPlan::new(16, 64);
        assert_eq!(p.dims_per_worker(), 4);
        assert_eq!(p.transactions_per_row(), 4);
        assert_eq!(p.groups_per_warp(), 2);
    }

    #[test]
    fn ragged_dimensions_round_up() {
        let p = DimensionPlan::new(16, 17);
        assert_eq!(
            p.dims_per_worker(),
            2,
            "17 dims over 16 workers needs 2 each"
        );
    }

    #[test]
    fn overprovisioned_workers_idle() {
        let p = DimensionPlan::new(32, 8);
        assert_eq!(p.active_workers(), 8, "only 8 of 32 lanes get a dimension");
        assert_eq!(p.dims_per_worker(), 1);
    }

    #[test]
    fn more_workers_fewer_transactions() {
        let few = DimensionPlan::new(2, 64);
        let many = DimensionPlan::new(32, 64);
        assert!(few.transactions_per_row() > many.transactions_per_row());
        assert_eq!(many.transactions_per_row(), 2);
    }

    #[test]
    fn lane_cycles_scale_with_neighbors() {
        let p = DimensionPlan::new(8, 32);
        assert_eq!(p.lane_cycles(5), 5 * 4);
    }
}
