//! Group-based workload management (Section 5).
//!
//! - [`group`]: group-based partitioning (Section 5.1) — neighbor lists are
//!   split into fixed-size groups, one per thread, with the leader-node
//!   scheme (Section 5.2) implied by group ownership.
//! - [`mapping`]: block-based mapping (Section 5.3) — groups are packed
//!   into thread blocks.
//! - [`dimension`]: dimension-based workload sharing (Section 5.4) — a
//!   group's element-wise work is spread over `dw` adjacent lanes covering
//!   adjacent dimensions (the coalescing-friendly layout of Figure 6b).

pub mod dimension;
pub mod group;
pub mod mapping;

pub use dimension::DimensionPlan;
pub use group::{partition_groups, NeighborGroup};
pub use mapping::BlockMapping;
