//! The analytical performance model (Section 7.1, Equations 2–4).
//!
//! Eq. 2 estimates relative latency from the input information and the
//! three hyper-parameters; Eq. 3 and Eq. 4 are feasibility constraints on
//! single-thread capacity and per-block shared memory.
//!
//! ## Faithfulness note
//!
//! Eq. 2 as printed is internally inconsistent with the paper's own prose
//! and Figure 11:
//!
//! - it targets `gs ~ alpha * N/E` (below 1 for every real graph), while
//!   Figure 11a's optima sit near the *average degree* (`alpha * E/N`);
//! - the deviation terms `|dw - D/3|` and `|tpb - sqrt(max_tpb)|` sit in
//!   the **denominator**, so moving `dw` *away* from `D/3` lowers the
//!   estimate, the opposite of the Section 7.1 prose ("the value of dw
//!   should make a tradeoff") and of Figure 11c's interior optimum;
//! - latency is monotone decreasing in `gs` (the `1/gs` prefactor always
//!   outruns the linear penalty), contradicting Figure 11a's U-shape.
//!
//! We therefore expose both: [`estimated_latency_raw`] is the formula
//! verbatim, and [`estimated_latency`] is the prose-consistent reading the
//! Decider uses — base work over effective parallelism times *multiplied*
//! deviation penalties with the degree-consistent `gs` target. The
//! discrepancy is recorded in DESIGN.md.

use gnnadvisor_gpu::{BlockResources, GpuSpec, DEFAULT_REGS_PER_THREAD};

use crate::input::InputInfo;
use crate::tuning::params::RuntimeParams;

/// Guard against division blow-ups at the model's poles.
const EPS: f64 = 0.5;

/// The prose-consistent latency model used by the Decider (see module
/// docs): total aggregation work `E x D` over the effective parallelism
/// the launch achieves, multiplied by deviation penalties around each
/// knob's sweet spot — `gs ~ alpha * avg_degree` (Figure 11a),
/// `dw ~ min(D/3, 32)` (Figure 11c), `tpb ~ 4 * sqrt(max_tpb) = 128`
/// (Figure 11b). Output is a relative score: lower is better.
pub fn estimated_latency(params: &RuntimeParams, input: &InputInfo, spec: &GpuSpec) -> f64 {
    let e = input.num_edges as f64;
    let d = input.aggregation_dim() as f64;
    let gs = params.group_size as f64;
    let dw = params.dim_workers as f64;
    let tpb = params.threads_per_block as f64;
    let max_tpb = spec.max_threads_per_block as f64;

    // Figure 11a's optima sit near the average degree itself (gs ~ 32 for
    // `artist`, avg degree 32): one group per typical node, so the leader
    // scheme degenerates to one flush per node while hubs still split.
    // `alpha` in [0.15, 0.3] maps to [0.5, 1.0] of the average degree.
    let target_gs = (input.alpha() * 3.33 * input.avg_degree).clamp(1.0, 64.0);
    let target_dw = (d / 3.0).clamp(1.0, 32.0);
    let target_tpb = (max_tpb / 4.0).max(32.0);

    // Effective parallelism: dw lanes cooperate per group but lanes beyond
    // D idle; groups beyond the device's thread budget queue.
    let effective_dw = dw.min(d);
    let base = (e * d) / effective_dw.max(EPS);

    let p_gs = 1.0 + (gs - target_gs).abs() / target_gs;
    let p_dw = 1.0 + (dw - target_dw).abs() / target_dw;
    let p_tpb = 1.0 + (tpb - target_tpb).abs() / max_tpb;
    base * p_gs * p_dw * p_tpb
}

/// Eq. 2 exactly as printed in the paper, kept for reference and tests:
/// `E*D / (gs * |dw - D/3| * |tpb - sqrt(max_tpb)|) * (1 + |gs - a*N/E|)`.
pub fn estimated_latency_raw(params: &RuntimeParams, input: &InputInfo, spec: &GpuSpec) -> f64 {
    let e = input.num_edges as f64;
    let d = input.aggregation_dim() as f64;
    let gs = params.group_size as f64;
    let dw = params.dim_workers as f64;
    let tpb = params.threads_per_block as f64;
    let max_tpb = spec.max_threads_per_block as f64;
    let target_gs = if input.num_edges == 0 {
        0.0
    } else {
        input.alpha() * input.num_nodes as f64 / input.num_edges as f64
    };

    let dw_term = (dw - d / 3.0).abs().max(EPS);
    let tpb_term = (tpb - max_tpb.sqrt()).abs().max(EPS);
    let base = (e * d) / (gs * dw_term * tpb_term).max(EPS);
    base * (1.0 + (gs - target_gs).abs())
}

/// Eq. 3: single-thread capacity — `0 < gs * D / dw <= capacity`.
/// `capacity` is expressed in per-thread elements; we derive a generous
/// bound from the device's per-thread register/throughput budget.
pub fn respects_thread_capacity(params: &RuntimeParams, input: &InputInfo, spec: &GpuSpec) -> bool {
    let work =
        params.group_size as f64 * input.aggregation_dim() as f64 / params.dim_workers as f64;
    // One thread comfortably streams a few thousand elements before it
    // starves the block; scale mildly with core width.
    let capability = 64.0 * spec.cores_per_sm() as f64;
    work > 0.0 && work <= capability
}

/// Eq. 4: per-block shared memory —
/// `0 < tpb * gs / (avg_degree * dw) * D * 4 <= shared capacity`.
/// The left side is the expected distinct-node slot demand of one block.
pub fn respects_shared_capacity(params: &RuntimeParams, input: &InputInfo, spec: &GpuSpec) -> bool {
    let avg_degree = input.avg_degree.max(1.0);
    let bytes = params.threads_per_block as f64 * params.group_size as f64
        / (avg_degree * params.dim_workers as f64)
        * input.aggregation_dim() as f64
        * 4.0;
    let resources = BlockResources {
        regs_per_thread: DEFAULT_REGS_PER_THREAD,
        smem_bytes: bytes.ceil() as usize,
        threads: params.threads_per_block,
    };
    bytes > 0.0 && spec.occupancy_limit(&resources).is_launchable()
}

/// Analytical Decider: picks the best valid parameter point on a coarse
/// grid under Eq. 2 (degree-consistent form), honoring Eq. 3 and Eq. 4.
/// This is the "Modeling" half of Section 7; the evolutionary "Estimating"
/// half refines from here.
pub fn decide(input: &InputInfo, spec: &GpuSpec) -> RuntimeParams {
    let mut best = RuntimeParams::default();
    let mut best_score = f64::INFINITY;
    for &gs in &[1usize, 2, 4, 8, 16, 32, 64] {
        for &tpb in &[64u32, 128, 256, 512, 1024] {
            for &dw in &[1u32, 2, 4, 8, 16, 32] {
                let p = RuntimeParams {
                    group_size: gs,
                    threads_per_block: tpb,
                    dim_workers: dw,
                    ..RuntimeParams::default()
                };
                if p.validate().is_err()
                    || !respects_thread_capacity(&p, input, spec)
                    || !respects_shared_capacity(&p, input, spec)
                {
                    continue;
                }
                let score = estimated_latency(&p, input, spec);
                if score < best_score {
                    best_score = score;
                    best = p;
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::AggOrder;

    fn info(n: usize, e: usize, d: usize, agg_first: bool) -> InputInfo {
        InputInfo {
            num_nodes: n,
            num_edges: e,
            avg_degree: e as f64 / n as f64,
            degree_stddev: 8.0,
            max_degree: 500,
            feat_dim: d,
            hidden_dim: 16,
            num_classes: 10,
            agg_order: if agg_first {
                AggOrder::AggregateThenUpdate
            } else {
                AggOrder::UpdateThenAggregate
            },
        }
    }

    fn p(gs: usize, tpb: u32, dw: u32) -> RuntimeParams {
        RuntimeParams {
            group_size: gs,
            threads_per_block: tpb,
            dim_workers: dw,
            ..Default::default()
        }
    }

    #[test]
    fn latency_prefers_gs_near_alpha_degree() {
        let spec = GpuSpec::quadro_p6000();
        let input = info(100_000, 1_200_000, 96, false); // avg degree 12
        let near = estimated_latency(&p(4, 256, 16), &input, &spec);
        let far = estimated_latency(&p(64, 256, 16), &input, &spec);
        assert!(near < far, "gs near alpha * avg_degree must score better");
    }

    #[test]
    fn raw_formula_differs_from_adjusted() {
        let spec = GpuSpec::quadro_p6000();
        let input = info(100_000, 1_200_000, 96, false);
        // The printed Eq. 2 target (alpha * N/E < 1) makes the penalty term
        // grow slower than the 1/gs prefactor shrinks, so raw latency is
        // monotone decreasing in gs — one of the reasons we also provide
        // the degree-consistent reading (see module docs).
        let raw4 = estimated_latency_raw(&p(4, 256, 16), &input, &spec);
        let raw64 = estimated_latency_raw(&p(64, 256, 16), &input, &spec);
        assert!(
            raw64 < raw4,
            "printed formula keeps rewarding bigger groups"
        );
        // The adjusted form penalizes overshooting alpha * avg_degree.
        let adj4 = estimated_latency(&p(4, 256, 16), &input, &spec);
        let adj512 = estimated_latency(&p(512, 256, 16), &input, &spec);
        assert!(adj4 < adj512, "adjusted formula has an interior optimum");
    }

    #[test]
    fn more_edges_cost_more() {
        let spec = GpuSpec::quadro_p6000();
        let small = info(10_000, 100_000, 64, false);
        let big = info(10_000, 400_000, 64, false);
        let params = p(4, 256, 16);
        assert!(
            estimated_latency(&params, &big, &spec) > estimated_latency(&params, &small, &spec)
        );
    }

    #[test]
    fn thread_capacity_binds_on_huge_groups() {
        let spec = GpuSpec::quadro_p6000();
        let input = info(10_000, 100_000, 1323, true); // full-dim aggregation
        assert!(respects_thread_capacity(&p(4, 256, 16), &input, &spec));
        assert!(!respects_thread_capacity(&p(512, 256, 1), &input, &spec));
    }

    #[test]
    fn shared_capacity_binds_on_high_dim() {
        let spec = GpuSpec::quadro_p6000();
        let high_dim = info(10_000, 100_000, 1323, true);
        assert!(
            !respects_shared_capacity(&p(32, 1024, 1), &high_dim, &spec),
            "1024 slots x 1323 dims cannot fit 48 KB"
        );
        let low_dim = info(10_000, 100_000, 96, false);
        assert!(respects_shared_capacity(&p(4, 256, 16), &low_dim, &spec));
    }

    #[test]
    fn decide_returns_valid_feasible_params() {
        let spec = GpuSpec::quadro_p6000();
        for input in [
            info(100_000, 1_000_000, 96, false),
            info(3_000, 10_000, 1433, true),
        ] {
            let chosen = decide(&input, &spec);
            chosen.validate().expect("decided params must validate");
            assert!(respects_thread_capacity(&chosen, &input, &spec));
            assert!(respects_shared_capacity(&chosen, &input, &spec));
        }
    }

    #[test]
    fn decide_adapts_to_dimensionality() {
        let spec = GpuSpec::quadro_p6000();
        let low = decide(&info(100_000, 1_000_000, 16, false), &spec);
        let high = decide(&info(100_000, 1_000_000, 1323, true), &spec);
        // Higher aggregation dimensionality must not choose fewer dimension
        // workers (Section 4.2: fine-grained sharing benefits high-dim).
        assert!(high.dim_workers >= low.dim_workers);
    }
}
