//! The *Estimating* strategy (Section 7.2): evolutionary parameter search.
//!
//! Mirrors the paper's loop: (1) start from a set of randomly generated
//! settings; (2) score them and keep the settings that deliver high enough
//! performance; (3) crossover the kept settings (plus light mutation) to
//! generate the next population; repeat for 10–15 iterations.
//!
//! The fitness function is pluggable: by default it is the analytical
//! model of Eq. 2 (fast, zero simulation), but callers can pass a closure
//! that launches the real simulated kernel for profile-guided tuning —
//! this is the "optimization loop" of Figure 1 (kernel & runtime crafter →
//! GPU profiling → performance evaluator).

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gnnadvisor_gpu::{Engine, GpuSpec, PhaseBreakdown};

use crate::input::InputInfo;
use crate::tuning::model;
use crate::tuning::params::RuntimeParams;

/// Knobs of the evolutionary search.
#[derive(Debug, Clone, Copy)]
pub struct EstimatorConfig {
    /// Population size per generation.
    pub population: usize,
    /// Generations to run (the paper: "10 - 15 iterations ... would be
    /// enough").
    pub iterations: usize,
    /// Survivors kept per generation.
    pub survivors: usize,
    /// Per-field mutation probability during crossover.
    pub mutation_rate: f64,
    /// RNG seed (the search is fully deterministic given the seed).
    pub seed: u64,
    /// Memoize candidate fitness: survivors re-enter every generation and
    /// crossover re-draws lattice points, so duplicate candidates are
    /// common — with memoization each distinct candidate is evaluated at
    /// most once. Scores are pure functions of the candidate (both the
    /// analytical model and the deterministic simulator), so this never
    /// changes the search result; disable it only to time the
    /// un-memoized baseline.
    pub memoize: bool,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self {
            population: 24,
            iterations: 12,
            survivors: 8,
            mutation_rate: 0.15,
            seed: 0xAD71,
            memoize: true,
        }
    }
}

/// Evaluation counters from one search run.
#[derive(Debug, Default, Clone, Copy)]
pub struct SearchStats {
    /// Distinct candidates the fitness function actually evaluated.
    pub unique_evals: usize,
    /// Evaluations answered from the memo cache instead of re-running.
    pub memo_hits: usize,
}

/// Full result of one evolutionary search: the winner, the evaluation
/// counters, and every distinct candidate's score (the memo cache) —
/// the two-tier tuner ranks finalists straight out of `evals`.
pub(crate) struct SearchOutcome {
    pub best: RuntimeParams,
    pub stats: SearchStats,
    pub evals: HashMap<RuntimeParams, f64>,
}

/// The evolutionary tuner.
pub struct Estimator {
    config: EstimatorConfig,
    input: InputInfo,
    spec: GpuSpec,
}

/// Candidate values per field, kept small so crossover explores a lattice.
const GS_CHOICES: &[usize] = &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 128];
const TPB_CHOICES: &[u32] = &[32, 64, 128, 256, 512, 1024];
const DW_CHOICES: &[u32] = &[1, 2, 4, 8, 16, 32];

impl Estimator {
    /// Creates a tuner for the given input and device.
    pub fn new(input: InputInfo, spec: GpuSpec, config: EstimatorConfig) -> Self {
        Self {
            config,
            input,
            spec,
        }
    }

    /// Runs the search with the analytical Eq. 2 fitness.
    pub fn tune(&self) -> RuntimeParams {
        self.tune_with(|p| model::estimated_latency(p, &self.input, &self.spec))
    }

    /// Runs the search with a simulation-backed fitness. The closure gets
    /// one [`Engine`] that is reused for every candidate evaluation, so
    /// the whole search shares a single
    /// [`gnnadvisor_gpu::RunContext`] — one set of cache arrays, hotspot
    /// maps, and warp accumulators — instead of allocating per candidate.
    /// Duplicate candidates drawn across generations are answered from the
    /// memo cache (see [`EstimatorConfig::memoize`]) and never
    /// re-simulated.
    pub fn tune_profiled(
        &self,
        mut latency: impl FnMut(&RuntimeParams, &Engine) -> f64,
    ) -> RuntimeParams {
        self.tune_profiled_stats(&mut latency).0
    }

    /// [`Estimator::tune_profiled`] plus the evaluation counters: how many
    /// distinct candidates were simulated and how many evaluations the
    /// memo cache absorbed.
    pub fn tune_profiled_stats(
        &self,
        mut latency: impl FnMut(&RuntimeParams, &Engine) -> f64,
    ) -> (RuntimeParams, SearchStats) {
        let engine = Engine::new(self.spec.clone());
        let outcome = self.search(|p| latency(p, &engine));
        (outcome.best, outcome.stats)
    }

    /// Profile-guided search scored on the phase-attributed breakdown
    /// instead of raw latency. The closure runs the candidate and returns
    /// its [`PhaseBreakdown`]; candidates are ranked by
    /// [`Estimator::breakdown_fitness`], which penalizes
    /// serialization-prone phases (atomic stalls, launch overhead) above
    /// streaming ones — those are the terms that scale worst as graphs
    /// grow, so the search prefers configurations whose cycles are spent
    /// in parallel-friendly compute and DRAM streaming.
    pub fn tune_profiled_breakdown(
        &self,
        mut run: impl FnMut(&RuntimeParams, &Engine) -> PhaseBreakdown,
    ) -> RuntimeParams {
        self.tune_profiled(|p, e| Self::breakdown_fitness(&run(p, e)))
    }

    /// Phase-aware fitness (lower is better): simulated cycles weighted by
    /// how poorly each phase scales. Compute and DRAM streaming count at
    /// face value; atomic serialization counts double (it grows with
    /// contention, not input size); launch overhead counts 4× (it is pure
    /// fixed cost that more blocks cannot amortize).
    pub fn breakdown_fitness(phases: &PhaseBreakdown) -> f64 {
        phases.compute_cycles as f64
            + phases.dram_cycles as f64
            + 2.0 * phases.atomic_cycles as f64
            + 4.0 * phases.launch_cycles as f64
    }

    /// Runs the search with a caller-provided latency function (lower is
    /// better), e.g. an actual simulated kernel launch.
    pub fn tune_with(&self, latency: impl FnMut(&RuntimeParams) -> f64) -> RuntimeParams {
        self.search(latency).best
    }

    /// [`Estimator::tune_with`] plus the evaluation counters.
    pub fn tune_with_stats(
        &self,
        latency: impl FnMut(&RuntimeParams) -> f64,
    ) -> (RuntimeParams, SearchStats) {
        let outcome = self.search(latency);
        (outcome.best, outcome.stats)
    }

    /// The search loop proper. Candidate scores are memoized (when
    /// [`EstimatorConfig::memoize`] is set) in a map keyed on the
    /// candidate itself; infeasible candidates never reach the fitness
    /// function or the cache.
    pub(crate) fn search(&self, mut latency: impl FnMut(&RuntimeParams) -> f64) -> SearchOutcome {
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut population: Vec<RuntimeParams> = (0..self.config.population)
            .map(|_| self.random_candidate(&mut rng))
            .collect();

        let mut best = population[0];
        let mut best_score = f64::INFINITY;
        let mut stats = SearchStats::default();
        let mut evals: HashMap<RuntimeParams, f64> = HashMap::new();

        for _gen in 0..self.config.iterations {
            // Score, keeping only feasible candidates.
            let mut scored: Vec<(f64, RuntimeParams)> = population
                .iter()
                .map(|&p| {
                    let feasible = p.validate().is_ok()
                        && model::respects_thread_capacity(&p, &self.input, &self.spec)
                        && model::respects_shared_capacity(&p, &self.input, &self.spec);
                    let s = if !feasible {
                        f64::INFINITY
                    } else if self.config.memoize {
                        if let Some(&cached) = evals.get(&p) {
                            stats.memo_hits += 1;
                            cached
                        } else {
                            let s = latency(&p);
                            stats.unique_evals += 1;
                            evals.insert(p, s);
                            s
                        }
                    } else {
                        let s = latency(&p);
                        stats.unique_evals += 1;
                        evals.insert(p, s);
                        s
                    };
                    (s, p)
                })
                .collect();
            scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            if scored[0].0 < best_score {
                best_score = scored[0].0;
                best = scored[0].1;
            }
            // Survivors + crossover offspring. Infeasible candidates carry
            // an INFINITY score and must not breed: when feasibility
            // starves the pool, reseed with fresh random draws instead of
            // recycling candidates the device cannot even launch.
            let mut survivors: Vec<RuntimeParams> = scored
                .iter()
                .filter(|(s, _)| s.is_finite())
                .take(self.config.survivors.max(2))
                .map(|&(_, p)| p)
                .collect();
            while survivors.len() < 2 {
                survivors.push(self.random_candidate(&mut rng));
            }
            population.clear();
            population.extend_from_slice(&survivors);
            while population.len() < self.config.population {
                let a = survivors[rng.gen_range(0..survivors.len())];
                let b = survivors[rng.gen_range(0..survivors.len())];
                population.push(self.crossover(a, b, &mut rng));
            }
        }
        // Fall back to the analytical decision if the search never found a
        // feasible point (degenerate inputs).
        if best_score.is_infinite() {
            best = model::decide(&self.input, &self.spec);
        }
        SearchOutcome { best, stats, evals }
    }

    fn random_candidate(&self, rng: &mut SmallRng) -> RuntimeParams {
        RuntimeParams {
            group_size: GS_CHOICES[rng.gen_range(0..GS_CHOICES.len())],
            threads_per_block: TPB_CHOICES[rng.gen_range(0..TPB_CHOICES.len())],
            dim_workers: DW_CHOICES[rng.gen_range(0..DW_CHOICES.len())],
            ..RuntimeParams::default()
        }
    }

    fn crossover(&self, a: RuntimeParams, b: RuntimeParams, rng: &mut SmallRng) -> RuntimeParams {
        let mut child = RuntimeParams {
            group_size: if rng.gen_bool(0.5) {
                a.group_size
            } else {
                b.group_size
            },
            threads_per_block: if rng.gen_bool(0.5) {
                a.threads_per_block
            } else {
                b.threads_per_block
            },
            dim_workers: if rng.gen_bool(0.5) {
                a.dim_workers
            } else {
                b.dim_workers
            },
            ..RuntimeParams::default()
        };
        if rng.gen_bool(self.config.mutation_rate) {
            child.group_size = GS_CHOICES[rng.gen_range(0..GS_CHOICES.len())];
        }
        if rng.gen_bool(self.config.mutation_rate) {
            child.threads_per_block = TPB_CHOICES[rng.gen_range(0..TPB_CHOICES.len())];
        }
        if rng.gen_bool(self.config.mutation_rate) {
            child.dim_workers = DW_CHOICES[rng.gen_range(0..DW_CHOICES.len())];
        }
        child
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::AggOrder;
    use crate::submit::gemm;

    fn input() -> InputInfo {
        InputInfo {
            num_nodes: 100_000,
            num_edges: 1_200_000,
            avg_degree: 12.0,
            degree_stddev: 20.0,
            max_degree: 800,
            feat_dim: 96,
            hidden_dim: 16,
            num_classes: 22,
            agg_order: AggOrder::UpdateThenAggregate,
        }
    }

    #[test]
    fn finds_feasible_params() {
        let est = Estimator::new(input(), GpuSpec::quadro_p6000(), EstimatorConfig::default());
        let p = est.tune();
        p.validate().expect("tuned params must validate");
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = GpuSpec::quadro_p6000();
        let a = Estimator::new(input(), spec.clone(), EstimatorConfig::default()).tune();
        let b = Estimator::new(input(), spec, EstimatorConfig::default()).tune();
        assert_eq!(a, b);
    }

    #[test]
    fn matches_or_beats_analytical_grid() {
        let spec = GpuSpec::quadro_p6000();
        let inp = input();
        let grid_best = model::decide(&inp, &spec);
        let grid_score = model::estimated_latency(&grid_best, &inp, &spec);
        let tuned = Estimator::new(inp.clone(), spec.clone(), EstimatorConfig::default()).tune();
        let tuned_score = model::estimated_latency(&tuned, &inp, &spec);
        // The evolutionary search explores a denser lattice, so it must be
        // at least as good as the coarse grid, with a small tolerance.
        assert!(
            tuned_score <= grid_score * 1.05,
            "tuned {tuned_score} vs grid {grid_score}"
        );
    }

    #[test]
    fn profiled_search_reuses_one_engine_and_is_deterministic() {
        let est = Estimator::new(input(), GpuSpec::quadro_p6000(), EstimatorConfig::default());
        // Simulation-backed fitness: price the update GEMM each candidate
        // implies. Every evaluation must see the same shared engine.
        let mut engines_seen: Vec<*const GpuSpec> = Vec::new();
        let fitness = |p: &RuntimeParams, e: &Engine| {
            engines_seen.push(e.spec() as *const GpuSpec);
            gemm(e, 1_000, p.threads_per_block as usize, 16).time_ms
        };
        let a = est.tune_profiled(fitness);
        assert!(
            engines_seen.windows(2).all(|w| w[0] == w[1]),
            "every candidate must be scored on the same engine"
        );
        let b = est.tune_profiled(|p, e| gemm(e, 1_000, p.threads_per_block as usize, 16).time_ms);
        assert_eq!(a, b, "profiled search is deterministic given the seed");
    }

    #[test]
    fn feasibility_starved_search_still_converges() {
        // A fitness needle: only tpb == 64 scores finite, everything else
        // is INFINITY (as if the device rejected every other launch). At
        // seed 3 the 4-candidate generation 0 contains no tpb == 64 draw,
        // and mutation is disabled — so when INFINITY scorers were
        // admitted to the survivor pool (the old behaviour), the gene
        // pool froze on infeasible parents and the search could provably
        // never reach the needle, falling back to the analytical
        // decision. The survivor filter + random reseeding keeps
        // exploring fresh draws each generation and must find it.
        let cfg = EstimatorConfig {
            population: 4,
            iterations: 15,
            survivors: 2,
            mutation_rate: 0.0,
            seed: 3,
            ..Default::default()
        };
        let spec = GpuSpec::quadro_p6000();
        let inp = input();
        // The analytical fallback would pick a different tpb, so reaching
        // the needle proves the evolutionary loop itself recovered.
        assert_ne!(model::decide(&inp, &spec).threads_per_block, 64);
        let est = Estimator::new(inp, spec, cfg);
        let p = est.tune_with(|p| {
            if p.threads_per_block == 64 {
                1.0
            } else {
                f64::INFINITY
            }
        });
        assert_eq!(p.threads_per_block, 64);
    }

    #[test]
    fn breakdown_fitness_prefers_parallel_friendly_cycles() {
        let streaming = PhaseBreakdown {
            compute_cycles: 500,
            dram_cycles: 500,
            atomic_cycles: 0,
            launch_cycles: 0,
        };
        let serialized = PhaseBreakdown {
            compute_cycles: 0,
            dram_cycles: 0,
            atomic_cycles: 500,
            launch_cycles: 500,
        };
        assert_eq!(streaming.total_cycles(), serialized.total_cycles());
        assert!(
            Estimator::breakdown_fitness(&streaming) < Estimator::breakdown_fitness(&serialized),
            "equal cycle counts must rank by how they serialize"
        );

        // End-to-end: the breakdown-aware profiled search is deterministic
        // and returns feasible parameters.
        let est = Estimator::new(input(), GpuSpec::quadro_p6000(), EstimatorConfig::default());
        let a = est.tune_profiled_breakdown(|p, e| {
            gemm(e, 1_000, p.threads_per_block as usize, 16).phases
        });
        a.validate().expect("feasible");
        let b = est.tune_profiled_breakdown(|p, e| {
            gemm(e, 1_000, p.threads_per_block as usize, 16).phases
        });
        assert_eq!(a, b);
    }

    #[test]
    fn memoization_never_reevaluates_and_preserves_the_result() {
        let spec = GpuSpec::quadro_p6000();
        let inp = input();
        let mut seen = std::collections::HashSet::new();
        let mut calls = 0usize;
        let est = Estimator::new(inp.clone(), spec.clone(), EstimatorConfig::default());
        let (memoized, stats) = est.tune_with_stats(|p| {
            calls += 1;
            assert!(seen.insert(*p), "candidate {p:?} was re-evaluated");
            model::estimated_latency(p, &inp, &spec)
        });
        assert_eq!(calls, stats.unique_evals);
        assert!(
            stats.memo_hits > 0,
            "survivors re-enter every generation, so the default search \
             must produce duplicate draws for the cache to absorb"
        );

        // Turning memoization off re-runs duplicates but picks the same
        // winner (the fitness is pure).
        let mut raw_calls = 0usize;
        let cfg = EstimatorConfig {
            memoize: false,
            ..Default::default()
        };
        let est_raw = Estimator::new(inp.clone(), spec.clone(), cfg);
        let (unmemoized, raw_stats) = est_raw.tune_with_stats(|p| {
            raw_calls += 1;
            model::estimated_latency(p, &inp, &spec)
        });
        assert_eq!(unmemoized, memoized);
        assert_eq!(raw_stats.memo_hits, 0);
        assert_eq!(
            raw_calls,
            stats.unique_evals + stats.memo_hits,
            "the memo cache must absorb exactly the duplicate evaluations"
        );
    }

    #[test]
    fn custom_fitness_is_respected() {
        let est = Estimator::new(input(), GpuSpec::quadro_p6000(), EstimatorConfig::default());
        // Fitness that only likes dw == 8.
        let p = est.tune_with(|p| if p.dim_workers == 8 { 1.0 } else { 1000.0 });
        assert_eq!(p.dim_workers, 8);
    }
}
