//! Calibrated closed-form latency model: the two-tier tuner's fast path.
//!
//! The paper's Eq. 2 scores candidates on a *relative* scale, which is
//! enough to rank a coarse grid but cannot answer "how many microseconds
//! does this launch take" — and therefore cannot be checked against the
//! event-level engine. This module extends the analytical model into an
//! absolute one: [`raw_phases`] derives structural cycle estimates for the
//! same four phases the engine attributes ([`PhaseBreakdown`]: compute,
//! DRAM streaming, atomic serialization, launch overhead), and
//! [`AnalyticModel::calibrate`] fits one scale coefficient per phase
//! against a handful of real engine runs by least squares through the
//! origin. Scoring a candidate is then four multiplications — microseconds
//! per candidate instead of a full event-level simulation — while the
//! reported relative-error band says how far the absolute prediction may
//! sit from the engine on the calibrated input.
//!
//! The structural forms mirror the engine's cost model (see
//! `crates/gpu/src/engine.rs` and DESIGN.md "Two-tier tuning"):
//!
//! - **compute**: per-block critical path. A block hosts `gpb = tpb / dw`
//!   groups spread over `tpb / 32` warps; each group issues
//!   `gs * ceil(D / dw)` memory transactions and exposes one
//!   latency-hiding-adjusted DRAM stall per neighbor row. Blocks round
//!   onto `num_sms` SMs.
//! - **dram**: bytes over device bandwidth, with an L2 hit fraction
//!   interpolated from how much of the feature matrix fits in cache, plus
//!   flush write traffic (per group with shared staging, per edge
//!   without).
//! - **atomic**: the hottest output row's flush serial chain —
//!   `ceil(max_degree / gs)` flushes, merged per block when shared
//!   staging is on, each paying the serialization cost.
//! - **launch**: the fixed kernel-launch overhead.
//!
//! Calibration absorbs what the closed forms deliberately leave out
//! (cache geometry, placement slack, contention constants); the forms
//! only need the right *shape* in each knob for ranking to survive, which
//! is the property the two-tier proptest pins down.

use gnnadvisor_gpu::{BlockResources, GpuSpec, PhaseBreakdown, DEFAULT_REGS_PER_THREAD};

use crate::input::InputInfo;
use crate::tuning::params::RuntimeParams;

/// Documented ceiling on the calibrated relative-error band for the bench
/// workloads (see DESIGN.md): calibration must explain the engine's total
/// latency on its own probe set to within this factor. CI and the unit
/// tests assert it.
pub const DOCUMENTED_ERROR_BAND: f64 = 0.35;

/// Structural per-phase cycle estimates for one candidate, before
/// calibration. All values are in (uncalibrated) device cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawPhases {
    /// SM-time critical path: issue work + exposed memory stalls.
    pub compute: f64,
    /// Device-wide DRAM bandwidth demand.
    pub dram: f64,
    /// Hottest-line atomic serial chain.
    pub atomic: f64,
    /// Fixed launch overhead.
    pub launch: f64,
}

impl RawPhases {
    /// Sum of the four phases.
    pub fn total(&self) -> f64 {
        self.compute + self.dram + self.atomic + self.launch
    }

    fn get(&self, phase: usize) -> f64 {
        match phase {
            0 => self.compute,
            1 => self.dram,
            2 => self.atomic,
            _ => self.launch,
        }
    }
}

/// Derives the structural phase estimates for `params` on `input`/`spec`.
pub fn raw_phases(params: &RuntimeParams, input: &InputInfo, spec: &GpuSpec) -> RawPhases {
    let n = input.num_nodes.max(1) as f64;
    let e = input.num_edges.max(1) as f64;
    let d = input.aggregation_dim().max(1) as f64;
    let gs = params.group_size.max(1) as f64;
    let dw = (params.dim_workers.max(1) as f64).min(32.0);
    let tpb = params.threads_per_block.max(32) as f64;
    let gpb = (tpb / dw).max(1.0);
    let sms = spec.num_sms.max(1) as f64;

    // Neighbor groups: full groups per edge plus the expected ragged tail
    // (each node's last group is half full on average).
    let groups = e / gs + n * (gs - 1.0) / (2.0 * gs);
    let blocks = (groups / gpb).ceil().max(1.0);

    // --- compute: per-block critical path times SM rounds -------------
    // Occupancy-limited latency hiding, as in the engine: resident blocks
    // per SM fall as tpb grows, and roughly half have runnable warps.
    // The residency comes from the same per-SM admission arithmetic the
    // device core uses (static shared memory is unknown this early, so
    // the estimate admits against warp/register/block slots only).
    let resident = spec
        .occupancy_limit(&BlockResources {
            regs_per_thread: DEFAULT_REGS_PER_THREAD,
            smem_bytes: 0,
            threads: params.threads_per_block.max(32),
        })
        .get()
        .max(1) as f64;
    let hiding = (spec.memory_parallelism as f64).min((resident / 2.0).max(1.0));
    // One warp hosts `32 / dw` dimension-teams, each walking its own
    // group — small `dw` serializes more groups through every warp
    // (`gpb / (tpb/32) = 32 / dw` for any block shape). Per group a team
    // issues `gs * ceil(D/dw)` transactions and exposes one
    // occupancy-hidden DRAM latency per neighbor row.
    let groups_per_warp = (32.0 / dw).max(1.0);
    let row_transactions = (d / dw).ceil();
    let issue_per_group = gs * row_transactions * spec.transaction_issue_cycles as f64;
    let stall_per_group = gs * spec.dram_latency_cycles as f64 / hiding;
    // The engine's per-block cost is the max of three bounds: the
    // critical warp's path, the scheduler issue bound over the whole
    // block, and the aggregate stall-throughput bound (the SM keeps
    // ~hiding × 8 requests in flight).
    let critical = groups_per_warp * (issue_per_group + stall_per_group);
    let issue_bound = gpb * issue_per_group / spec.warp_schedulers.max(1) as f64;
    let stall_bound = gpb * gs * spec.dram_latency_cycles as f64 / (hiding * 8.0);
    let block_cycles =
        critical.max(issue_bound).max(stall_bound) + spec.block_overhead_cycles as f64;
    let rounds = (blocks / sms).ceil();
    let compute = rounds * block_cycles;

    // --- dram: bytes over bandwidth -----------------------------------
    let row_bytes = d * 4.0;
    let feature_bytes = n * row_bytes;
    // Fraction of row reads served by the L2 once it is warm.
    let hit = (spec.l2_bytes as f64 / feature_bytes).clamp(0.0, 1.0);
    // Cold misses fetch every distinct row once; the re-reads miss at the
    // interpolated rate.
    let read_bytes = (n + (1.0 - hit) * (e - n).max(0.0)) * row_bytes;
    // Output flush traffic: one row write per group with shared staging,
    // one per edge without (direct atomic accumulation writes through).
    let flushes = if params.use_shared { groups } else { e };
    let write_bytes = flushes * row_bytes;
    let dram = (read_bytes + write_bytes) / spec.dram_bytes_per_cycle().max(1e-9);

    // --- atomic: hottest-row serial chain -----------------------------
    let hub_groups = (input.max_degree.max(1) as f64 / gs).ceil();
    // Shared staging merges a block's flushes of the same row into one.
    let hub_rounds = if params.use_shared {
        (hub_groups / gpb).ceil()
    } else {
        hub_groups
    };
    let atomic = hub_rounds * spec.atomic_serialize_cycles as f64;

    let launch = spec.kernel_launch_cycles as f64;

    RawPhases {
        compute,
        dram,
        atomic,
        launch,
    }
}

/// Per-phase scale coefficients fit by calibration (dimensionless;
/// `1.0` = the structural estimate was already exact).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseCoeffs {
    pub compute: f64,
    pub dram: f64,
    pub atomic: f64,
    pub launch: f64,
}

impl PhaseCoeffs {
    fn get(&self, phase: usize) -> f64 {
        match phase {
            0 => self.compute,
            1 => self.dram,
            2 => self.atomic,
            _ => self.launch,
        }
    }

    fn set(&mut self, phase: usize, value: f64) {
        match phase {
            0 => self.compute = value,
            1 => self.dram = value,
            2 => self.atomic = value,
            _ => self.launch = value,
        }
    }
}

impl Default for PhaseCoeffs {
    fn default() -> Self {
        Self {
            compute: 1.0,
            dram: 1.0,
            atomic: 1.0,
            launch: 1.0,
        }
    }
}

/// The calibrated fast-path model: structural phases times fitted
/// coefficients, bound to one input and device.
#[derive(Debug, Clone)]
pub struct AnalyticModel {
    input: InputInfo,
    spec: GpuSpec,
    coeffs: PhaseCoeffs,
    error_band: f64,
}

impl AnalyticModel {
    /// An uncalibrated model (all coefficients 1, infinite error band).
    /// Rankings still work; absolute predictions are structural guesses.
    pub fn uncalibrated(input: InputInfo, spec: GpuSpec) -> Self {
        Self {
            input,
            spec,
            coeffs: PhaseCoeffs::default(),
            error_band: f64::INFINITY,
        }
    }

    /// Fits one coefficient per phase against measured engine runs by
    /// least squares through the origin
    /// (`c_p = Σ measured_p · raw_p / Σ raw_p²`), then records the
    /// relative-error band: the worst `|predicted − measured| / measured`
    /// total latency over the calibration probes. A phase whose structural
    /// estimate is zero on every probe keeps its coefficient at 1.
    pub fn calibrate(
        input: InputInfo,
        spec: GpuSpec,
        probes: &[(RuntimeParams, PhaseBreakdown)],
    ) -> Self {
        let mut model = Self::uncalibrated(input, spec);
        if probes.is_empty() {
            return model;
        }
        let raws: Vec<RawPhases> = probes
            .iter()
            .map(|(p, _)| raw_phases(p, &model.input, &model.spec))
            .collect();
        for phase in 0..4 {
            let mut num = 0.0;
            let mut den = 0.0;
            for ((_, measured), raw) in probes.iter().zip(&raws) {
                let m = match phase {
                    0 => measured.compute_cycles,
                    1 => measured.dram_cycles,
                    2 => measured.atomic_cycles,
                    _ => measured.launch_cycles,
                } as f64;
                let r = raw.get(phase);
                num += m * r;
                den += r * r;
            }
            if den > 0.0 {
                model.coeffs.set(phase, num / den);
            }
        }
        let mut band: f64 = 0.0;
        for ((_, measured), raw) in probes.iter().zip(&raws) {
            let total = measured.total_cycles() as f64;
            if total <= 0.0 {
                continue;
            }
            let predicted: f64 = (0..4).map(|ph| model.coeffs.get(ph) * raw.get(ph)).sum();
            band = band.max((predicted - total).abs() / total);
        }
        model.error_band = band;
        model
    }

    /// Predicted total latency of `params` in device cycles.
    pub fn predict_cycles(&self, params: &RuntimeParams) -> f64 {
        let raw = raw_phases(params, &self.input, &self.spec);
        (0..4).map(|ph| self.coeffs.get(ph) * raw.get(ph)).sum()
    }

    /// Predicted total latency of `params` in microseconds.
    pub fn predict_us(&self, params: &RuntimeParams) -> f64 {
        self.predict_cycles(params) / (self.spec.clock_ghz * 1e3)
    }

    /// The fitted per-phase coefficients.
    pub fn coeffs(&self) -> &PhaseCoeffs {
        &self.coeffs
    }

    /// Worst relative total-latency error over the calibration probes
    /// (infinite when uncalibrated).
    pub fn error_band(&self) -> f64 {
        self.error_band
    }

    /// The input the model was built for.
    pub fn input(&self) -> &InputInfo {
        &self.input
    }

    /// The device the model was built for.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::AggOrder;

    fn input() -> InputInfo {
        InputInfo {
            num_nodes: 100_000,
            num_edges: 1_200_000,
            avg_degree: 12.0,
            degree_stddev: 20.0,
            max_degree: 800,
            feat_dim: 96,
            hidden_dim: 16,
            num_classes: 22,
            agg_order: AggOrder::UpdateThenAggregate,
        }
    }

    fn p(gs: usize, tpb: u32, dw: u32) -> RuntimeParams {
        RuntimeParams {
            group_size: gs,
            threads_per_block: tpb,
            dim_workers: dw,
            ..Default::default()
        }
    }

    #[test]
    fn raw_phases_are_finite_and_positive() {
        let spec = GpuSpec::quadro_p6000();
        let inp = input();
        for params in [p(1, 32, 1), p(4, 256, 16), p(128, 1024, 32)] {
            let raw = raw_phases(&params, &inp, &spec);
            for ph in [raw.compute, raw.dram, raw.atomic, raw.launch] {
                assert!(ph.is_finite() && ph >= 0.0, "{params:?}: {raw:?}");
            }
            assert!(raw.total() > 0.0);
        }
    }

    #[test]
    fn more_edges_cost_more_cycles() {
        let spec = GpuSpec::quadro_p6000();
        let small = input();
        let mut big = input();
        big.num_edges *= 4;
        big.avg_degree *= 4.0;
        let params = p(4, 256, 16);
        assert!(
            raw_phases(&params, &big, &spec).total() > raw_phases(&params, &small, &spec).total()
        );
    }

    #[test]
    fn shared_staging_cuts_flush_traffic_and_hub_serialization() {
        let spec = GpuSpec::quadro_p6000();
        let inp = input();
        let on = p(4, 256, 16);
        let off = RuntimeParams {
            use_shared: false,
            ..on
        };
        let raw_on = raw_phases(&on, &inp, &spec);
        let raw_off = raw_phases(&off, &inp, &spec);
        assert!(raw_on.dram < raw_off.dram, "per-group flush beats per-edge");
        assert!(raw_on.atomic < raw_off.atomic, "block-merged hub flushes");
    }

    #[test]
    fn calibration_fits_a_synthetic_linear_target_exactly() {
        let spec = GpuSpec::quadro_p6000();
        let inp = input();
        // Measurements manufactured as exact multiples of the structural
        // estimates: calibration must recover the multipliers and report a
        // (near-)zero band.
        let truth = [1.7, 0.4, 3.0, 1.0];
        let probes: Vec<(RuntimeParams, PhaseBreakdown)> =
            [p(2, 128, 8), p(16, 256, 16), p(64, 512, 32)]
                .into_iter()
                .map(|params| {
                    let raw = raw_phases(&params, &inp, &spec);
                    let pb = PhaseBreakdown {
                        compute_cycles: (truth[0] * raw.compute) as u64,
                        dram_cycles: (truth[1] * raw.dram) as u64,
                        atomic_cycles: (truth[2] * raw.atomic) as u64,
                        launch_cycles: (truth[3] * raw.launch) as u64,
                    };
                    (params, pb)
                })
                .collect();
        let model = AnalyticModel::calibrate(inp, spec, &probes);
        assert!((model.coeffs().compute - truth[0]).abs() < 0.05);
        assert!((model.coeffs().dram - truth[1]).abs() < 0.05);
        assert!((model.coeffs().atomic - truth[2]).abs() < 0.05);
        assert!(model.error_band() < 0.01, "band = {}", model.error_band());
    }

    #[test]
    fn uncalibrated_model_has_infinite_band_but_finite_predictions() {
        let model = AnalyticModel::uncalibrated(input(), GpuSpec::quadro_p6000());
        assert!(model.error_band().is_infinite());
        let us = model.predict_us(&p(4, 256, 16));
        assert!(us.is_finite() && us > 0.0);
        assert!(
            (model.predict_cycles(&p(4, 256, 16)) - us * model.spec().clock_ghz * 1e3).abs() < 1e-6
        );
    }
}
