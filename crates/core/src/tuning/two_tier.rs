//! Two-tier tuning: explore on the calibrated analytical fast path,
//! verify only the finalists on the event-level engine.
//!
//! The full-simulation tuner prices every candidate with an event-level
//! launch, so tuning cost scales linearly with the search size even
//! though most candidates only need to be *ranked*, not timed precisely.
//! [`tune_two_tier`] splits the work:
//!
//! 1. **Probe** a handful of deterministic, feasible configurations on
//!    the engine and collect their measured [`PhaseBreakdown`]s.
//! 2. **Calibrate** the closed-form [`AnalyticModel`] against the probes
//!    (per-phase least squares; the model reports a relative-error band).
//! 3. **Explore** with the evolutionary [`Estimator`], scoring every
//!    candidate on the calibrated model — microseconds per candidate.
//! 4. **Verify** only the top-K finalists (by fast-path score) on the
//!    engine and return the engine-verified winner.
//!
//! Every stage is deterministic: the probe list is fixed, the search is
//! seeded, and the engine is bit-identical at any worker count — so the
//! whole tuner is too.

use std::collections::HashMap;

use gnnadvisor_gpu::{
    BlockResources, Engine, GpuSpec, KernelMetrics, PhaseBreakdown, DEFAULT_REGS_PER_THREAD,
};
use gnnadvisor_graph::Csr;

use crate::input::InputInfo;
use crate::kernels::advisor::AdvisorKernel;
use crate::memory::organize::organize_shared;
use crate::tuning::analytic::AnalyticModel;
use crate::tuning::estimator::{Estimator, EstimatorConfig};
use crate::tuning::model;
use crate::tuning::params::RuntimeParams;

/// Knobs of the two-tier tuner.
#[derive(Debug, Clone, Copy)]
pub struct TwoTierConfig {
    /// The fast-path evolutionary search (memoization recommended).
    pub estimator: EstimatorConfig,
    /// Finalists verified on the engine (the fast-path winner is always
    /// among them).
    pub top_k: usize,
    /// Calibration probes run on the engine before the search.
    pub probes: usize,
}

impl Default for TwoTierConfig {
    fn default() -> Self {
        Self {
            estimator: EstimatorConfig::default(),
            top_k: 4,
            probes: 3,
        }
    }
}

/// One engine-verified finalist.
#[derive(Debug, Clone, Copy)]
pub struct Finalist {
    pub params: RuntimeParams,
    /// Fast-path (calibrated analytical) score in microseconds.
    pub fast_us: f64,
    /// Engine-verified latency in milliseconds (infinite when the engine
    /// rejected the launch).
    pub engine_ms: f64,
}

/// Everything the two-tier tuner decided and measured.
#[derive(Debug, Clone)]
pub struct TwoTierOutcome {
    /// The engine-verified winner.
    pub best: RuntimeParams,
    /// The winner's engine latency in milliseconds.
    pub best_engine_ms: f64,
    /// The fast path's own top-1 before verification.
    pub fast_best: RuntimeParams,
    /// The verified finalists, in fast-path rank order.
    pub finalists: Vec<Finalist>,
    /// Every distinct feasible candidate the fast path scored, ranked by
    /// fast-path score ascending (the finalists are its prefix).
    pub pool: Vec<(RuntimeParams, f64)>,
    /// The calibrated model (exposes coefficients and error band).
    pub model: AnalyticModel,
    /// Distinct candidates the fast path scored.
    pub fast_evals: usize,
    /// Fast-path evaluations absorbed by the memo cache.
    pub memo_hits: usize,
    /// Event-level engine launches consumed (probes + verification).
    pub engine_evals: usize,
}

/// Deterministic, feasible probe candidates: the analytical decision, the
/// defaults, and fixed lattice points spanning the knob ranges.
fn probe_candidates(input: &InputInfo, spec: &GpuSpec, count: usize) -> Vec<RuntimeParams> {
    let lattice = [
        (16usize, 128u32, 8u32),
        (2, 512, 32),
        (64, 64, 4),
        (8, 1024, 16),
        (32, 256, 2),
        (4, 128, 4),
    ];
    let mut probes: Vec<RuntimeParams> = vec![model::decide(input, spec), RuntimeParams::default()];
    probes.extend(lattice.iter().map(|&(gs, tpb, dw)| RuntimeParams {
        group_size: gs,
        threads_per_block: tpb,
        dim_workers: dw,
        ..RuntimeParams::default()
    }));
    let mut out: Vec<RuntimeParams> = Vec::new();
    for p in probes {
        if out.len() >= count.max(2) {
            break;
        }
        let feasible = p.validate().is_ok()
            && model::respects_thread_capacity(&p, input, spec)
            && model::respects_shared_capacity(&p, input, spec);
        if feasible && !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

/// Runs the two-tier tuner. `run` launches one candidate on the given
/// engine and returns its metrics, or `None` when the candidate cannot
/// launch at all (such candidates verify as infinitely slow). The same
/// closure serves calibration probes and finalist verification, so both
/// tiers measure exactly the same workload.
pub fn tune_two_tier(
    input: &InputInfo,
    spec: &GpuSpec,
    config: &TwoTierConfig,
    mut run: impl FnMut(&RuntimeParams, &Engine) -> Option<KernelMetrics>,
) -> TwoTierOutcome {
    let engine = Engine::new(spec.clone());
    let mut engine_evals = 0usize;
    // Engine results are memoized too: a finalist that served as a probe
    // is never re-simulated.
    let mut engine_cache: HashMap<RuntimeParams, (f64, Option<PhaseBreakdown>)> = HashMap::new();

    // Tier 0: calibration probes.
    let mut measured: Vec<(RuntimeParams, PhaseBreakdown)> = Vec::new();
    for p in probe_candidates(input, spec, config.probes) {
        engine_evals += 1;
        match run(&p, &engine) {
            Some(m) => {
                engine_cache.insert(p, (m.time_ms, Some(m.phases)));
                measured.push((p, m.phases));
            }
            None => {
                engine_cache.insert(p, (f64::INFINITY, None));
            }
        }
    }
    let model = if measured.is_empty() {
        AnalyticModel::uncalibrated(input.clone(), spec.clone())
    } else {
        AnalyticModel::calibrate(input.clone(), spec.clone(), &measured)
    };

    // Tier 1: explore on the calibrated closed form.
    let estimator = Estimator::new(input.clone(), spec.clone(), config.estimator);
    let search = estimator.search(|p| model.predict_us(p));
    let fast_best = search.best;

    // Rank every distinct candidate the search scored and keep the top-K
    // (the fast-path winner always makes the cut).
    let mut pool: Vec<(RuntimeParams, f64)> = search
        .evals
        .iter()
        .filter(|(_, s)| s.is_finite())
        .map(|(&p, &s)| (p, s))
        .collect();
    pool.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| key(&a.0).cmp(&key(&b.0)))
    });
    let mut shortlist: Vec<(RuntimeParams, f64)> = Vec::new();
    if let Some(&s) = search.evals.get(&fast_best) {
        shortlist.push((fast_best, s));
    } else {
        shortlist.push((fast_best, model.predict_us(&fast_best)));
    }
    for &(p, s) in &pool {
        if shortlist.len() >= config.top_k.max(1) {
            break;
        }
        if !shortlist.iter().any(|(q, _)| *q == p) {
            shortlist.push((p, s));
        }
    }

    // Tier 2: verify the finalists on the engine.
    let mut finalists: Vec<Finalist> = Vec::new();
    for (p, fast_us) in shortlist {
        let engine_ms = if let Some(&(ms, _)) = engine_cache.get(&p) {
            ms
        } else {
            engine_evals += 1;
            let ms = run(&p, &engine).map_or(f64::INFINITY, |m| m.time_ms);
            engine_cache.insert(p, (ms, None));
            ms
        };
        finalists.push(Finalist {
            params: p,
            fast_us,
            engine_ms,
        });
    }

    let winner = finalists
        .iter()
        .filter(|f| f.engine_ms.is_finite())
        .min_by(|a, b| {
            a.engine_ms
                .partial_cmp(&b.engine_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| key(&a.params).cmp(&key(&b.params)))
        })
        .copied();
    let (best, best_engine_ms) = match winner {
        Some(f) => (f.params, f.engine_ms),
        // Nothing launched: fall back to the fast-path winner.
        None => (fast_best, f64::INFINITY),
    };

    TwoTierOutcome {
        best,
        best_engine_ms,
        fast_best,
        finalists,
        pool,
        model,
        fast_evals: search.stats.unique_evals,
        memo_hits: search.stats.memo_hits,
        engine_evals,
    }
}

/// Deterministic tie-break ordering over candidates.
fn key(p: &RuntimeParams) -> (usize, u32, u32, bool, bool) {
    (
        p.group_size,
        p.threads_per_block,
        p.dim_workers,
        p.use_shared,
        p.renumber,
    )
}

/// Full-simulation fitness for one aggregation candidate: re-partitions
/// the graph at the candidate's group size, rebuilds the Algorithm 1
/// shared layout (narrowing the block exactly like
/// `Advisor::resolve_launch` when it overflows shared memory), and
/// launches the event-level aggregation kernel. Returns `None` when the
/// candidate cannot launch (infeasible grid).
pub fn aggregation_metrics(
    graph: &Csr,
    dim: usize,
    params: &RuntimeParams,
    engine: &Engine,
) -> Option<KernelMetrics> {
    let groups = crate::workload::group::partition_groups(graph, params.group_size).ok()?;
    let mut narrowed = *params;
    let mut layout = None;
    if narrowed.use_shared {
        let spec = engine.spec();
        loop {
            let candidate = organize_shared(&groups, narrowed.groups_per_block());
            let resources = BlockResources {
                regs_per_thread: DEFAULT_REGS_PER_THREAD,
                smem_bytes: candidate.shared_bytes(dim),
                threads: narrowed.threads_per_block,
            };
            if spec.occupancy_limit(&resources).is_launchable() {
                layout = Some(candidate);
                break;
            }
            let next = narrowed.threads_per_block / 2;
            if next < 128 || next < narrowed.dim_workers {
                break;
            }
            narrowed.threads_per_block = next;
        }
    }
    let launch_params = if layout.is_some() { narrowed } else { *params };
    let kernel = AdvisorKernel::new(graph, &groups, layout.as_ref(), dim, launch_params);
    crate::submit::launch(engine, &kernel).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{extract, AggOrder};
    use gnnadvisor_graph::generators::{community_graph, CommunityParams};

    fn graph() -> Csr {
        let params = CommunityParams {
            num_nodes: 2_000,
            num_edges: 40_000,
            mean_community: 50,
            community_size_cv: 0.3,
            inter_fraction: 0.1,
            shuffle_ids: true,
        };
        community_graph(&params, 33).expect("valid").0
    }

    fn small_config() -> TwoTierConfig {
        TwoTierConfig {
            estimator: EstimatorConfig {
                population: 12,
                iterations: 6,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn two_tier_returns_engine_verified_winner() {
        let g = graph();
        let spec = GpuSpec::quadro_p6000();
        let input = extract(&g, 96, 16, 10, AggOrder::UpdateThenAggregate);
        let dim = input.aggregation_dim();
        let out = tune_two_tier(&input, &spec, &small_config(), |p, e| {
            aggregation_metrics(&g, dim, p, e)
        });
        out.best.validate().expect("winner must validate");
        assert!(out.best_engine_ms.is_finite() && out.best_engine_ms > 0.0);
        assert!(out.model.error_band().is_finite());
        assert!(
            out.finalists.iter().any(|f| f.params == out.best),
            "winner must come from the verified finalists"
        );
        assert!(
            out.engine_evals <= 3 + out.finalists.len(),
            "engine runs must stay probes + finalists: {}",
            out.engine_evals
        );
        assert!(
            out.fast_evals > out.engine_evals,
            "exploration is fast-path"
        );
    }

    #[test]
    fn two_tier_is_deterministic() {
        let g = graph();
        let spec = GpuSpec::quadro_p6000();
        let input = extract(&g, 96, 16, 10, AggOrder::UpdateThenAggregate);
        let dim = input.aggregation_dim();
        let a = tune_two_tier(&input, &spec, &small_config(), |p, e| {
            aggregation_metrics(&g, dim, p, e)
        });
        let b = tune_two_tier(&input, &spec, &small_config(), |p, e| {
            aggregation_metrics(&g, dim, p, e)
        });
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_engine_ms, b.best_engine_ms);
        assert_eq!(a.model.error_band(), b.model.error_band());
        assert_eq!(a.finalists.len(), b.finalists.len());
    }

    #[test]
    fn winner_latency_sits_within_the_error_band_of_the_full_sim_winner() {
        // The acceptance-criterion property: exhaustively engine-score the
        // same candidate pool the fast path explored and check the
        // two-tier winner's latency lands within the calibrated band of
        // the true (full-sim) winner's latency.
        let g = graph();
        let spec = GpuSpec::quadro_p6000();
        let input = extract(&g, 96, 16, 10, AggOrder::UpdateThenAggregate);
        let dim = input.aggregation_dim();
        let cfg = small_config();
        let out = tune_two_tier(&input, &spec, &cfg, |p, e| {
            aggregation_metrics(&g, dim, p, e)
        });

        // Full-sim baseline over the identical seeded search.
        let est = Estimator::new(input.clone(), spec.clone(), cfg.estimator);
        let engine = Engine::new(spec.clone());
        let full_best = est.tune_with(|p| {
            aggregation_metrics(&g, dim, p, &engine).map_or(f64::INFINITY, |m| m.time_ms)
        });
        let full_ms = aggregation_metrics(&g, dim, &full_best, &engine)
            .expect("full-sim winner launches")
            .time_ms;

        let band = out.model.error_band().max(0.05);
        assert!(
            out.best_engine_ms <= full_ms * (1.0 + band) + 1e-12,
            "two-tier winner {} ms vs full-sim winner {} ms exceeds band {}",
            out.best_engine_ms,
            full_ms,
            band
        );
    }

    #[test]
    #[ignore]
    fn debug_dump_ranking() {
        let g = graph();
        let spec = GpuSpec::quadro_p6000();
        let input = extract(&g, 96, 16, 10, AggOrder::UpdateThenAggregate);
        let dim = input.aggregation_dim();
        let cfg = small_config();
        let out = tune_two_tier(&input, &spec, &cfg, |p, e| {
            aggregation_metrics(&g, dim, p, e)
        });
        println!(
            "band={:.4} coeffs={:?}",
            out.model.error_band(),
            out.model.coeffs()
        );
        let est = Estimator::new(input.clone(), spec.clone(), cfg.estimator);
        let engine = Engine::new(spec.clone());
        let search = est.search(|p| out.model.predict_us(p));
        let mut rows: Vec<(RuntimeParams, f64, f64)> = search
            .evals
            .iter()
            .map(|(&p, &s)| {
                let ms =
                    aggregation_metrics(&g, dim, &p, &engine).map_or(f64::INFINITY, |m| m.time_ms);
                (p, s, ms)
            })
            .collect();
        rows.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
        for (p, fast_us, ms) in rows {
            println!(
                "gs={:3} tpb={:4} dw={:2} fast={:9.3}us engine={:9.3}us",
                p.group_size,
                p.threads_per_block,
                p.dim_workers,
                fast_us,
                ms * 1000.0
            );
        }
    }

    #[test]
    fn probe_candidates_are_feasible_and_deterministic() {
        let spec = GpuSpec::quadro_p6000();
        let input = extract(&graph(), 96, 16, 10, AggOrder::UpdateThenAggregate);
        let a = probe_candidates(&input, &spec, 3);
        let b = probe_candidates(&input, &spec, 3);
        assert_eq!(a, b);
        assert!(a.len() >= 2);
        for p in &a {
            p.validate().expect("probe must validate");
            assert!(model::respects_thread_capacity(p, &input, &spec));
            assert!(model::respects_shared_capacity(p, &input, &spec));
        }
    }
}
