//! The runtime's performance-related parameters (Section 7.1).

use serde::{Deserialize, Serialize};

use crate::{CoreError, Result};

/// The tunable knobs GNNAdvisor exposes to users and to its auto-tuner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RuntimeParams {
    /// Group size `gs`: neighbors per group (Section 5.1).
    pub group_size: usize,
    /// Threads per block `tpb` (Section 5.3).
    pub threads_per_block: u32,
    /// Dimension workers `dw`: lanes sharing one group's dimension work
    /// (Section 5.4).
    pub dim_workers: u32,
    /// Whether block-level optimizations (shared-memory staging + leader
    /// flush, Sections 5.3/6.2) are enabled. The Figure 12c ablation turns
    /// this off.
    pub use_shared: bool,
    /// Whether community-aware node renumbering (Section 6.1) is applied.
    /// The Figure 12a/b ablation turns this off.
    pub renumber: bool,
}

impl Default for RuntimeParams {
    fn default() -> Self {
        Self {
            group_size: 4,
            threads_per_block: 256,
            dim_workers: 16,
            use_shared: true,
            renumber: true,
        }
    }
}

impl RuntimeParams {
    /// Validates ranges: `gs >= 1`, `tpb` in `[32, 1024]` and a multiple of
    /// the warp width, `dw` in `[1, 32]` and dividing `tpb`.
    pub fn validate(&self) -> Result<()> {
        if self.group_size == 0 {
            return Err(CoreError::InvalidParams {
                reason: "group_size must be >= 1".into(),
            });
        }
        if !(32..=1024).contains(&self.threads_per_block)
            || !self.threads_per_block.is_multiple_of(32)
        {
            return Err(CoreError::InvalidParams {
                reason: format!(
                    "threads_per_block {} must be a multiple of 32 in [32, 1024]",
                    self.threads_per_block
                ),
            });
        }
        if !(1..=32).contains(&self.dim_workers) {
            return Err(CoreError::InvalidParams {
                reason: format!("dim_workers {} must lie in [1, 32]", self.dim_workers),
            });
        }
        if !self.threads_per_block.is_multiple_of(self.dim_workers) {
            return Err(CoreError::InvalidParams {
                reason: format!(
                    "dim_workers {} must divide threads_per_block {}",
                    self.dim_workers, self.threads_per_block
                ),
            });
        }
        Ok(())
    }

    /// Groups hosted per block under this configuration.
    pub fn groups_per_block(&self) -> usize {
        (self.threads_per_block / self.dim_workers) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        RuntimeParams::default()
            .validate()
            .expect("default params must validate");
    }

    #[test]
    fn rejects_out_of_range() {
        let bad_gs = RuntimeParams {
            group_size: 0,
            ..Default::default()
        };
        assert!(bad_gs.validate().is_err());
        let bad_tpb = RuntimeParams {
            threads_per_block: 48,
            ..Default::default()
        };
        assert!(bad_tpb.validate().is_err());
        let huge_tpb = RuntimeParams {
            threads_per_block: 2048,
            ..Default::default()
        };
        assert!(huge_tpb.validate().is_err());
        let bad_dw = RuntimeParams {
            dim_workers: 33,
            ..Default::default()
        };
        assert!(bad_dw.validate().is_err());
        let non_dividing = RuntimeParams {
            threads_per_block: 64,
            dim_workers: 24,
            ..Default::default()
        };
        assert!(non_dividing.validate().is_err());
    }

    #[test]
    fn groups_per_block_formula() {
        let p = RuntimeParams {
            threads_per_block: 256,
            dim_workers: 8,
            ..Default::default()
        };
        assert_eq!(p.groups_per_block(), 32);
    }
}
