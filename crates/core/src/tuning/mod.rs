//! Design optimization (Section 7): the analytical *Modeling* of Eq. 2–4
//! and the evolutionary *Estimating* search.

pub mod estimator;
pub mod model;
pub mod params;

pub use estimator::{Estimator, EstimatorConfig};
pub use model::{estimated_latency, respects_shared_capacity, respects_thread_capacity};
pub use params::RuntimeParams;
