//! Design optimization (Section 7): the analytical *Modeling* of Eq. 2–4,
//! the evolutionary *Estimating* search, and the two-tier tuner that
//! explores on a calibrated closed-form model and verifies finalists on
//! the event-level engine.

pub mod analytic;
pub mod estimator;
pub mod model;
pub mod params;
pub mod two_tier;

pub use analytic::{AnalyticModel, PhaseCoeffs, RawPhases, DOCUMENTED_ERROR_BAND};
pub use estimator::{Estimator, EstimatorConfig, SearchStats};
pub use model::{estimated_latency, respects_shared_capacity, respects_thread_capacity};
pub use params::RuntimeParams;
pub use two_tier::{aggregation_metrics, tune_two_tier, Finalist, TwoTierConfig, TwoTierOutcome};
