//! Multi-GPU execution (the paper's future-work extension).
//!
//! Section 8.7: "we also foresee that our current work of GNNAdvisor can
//! be extended to the multi-GPU or distributed data center". This module
//! implements that extension on the simulator: the (renumbered) node range
//! is split into contiguous partitions with balanced edge counts, each
//! partition's group workload runs on its own simulated device, and halo
//! node embeddings (neighbors owned by other devices) are exchanged over a
//! modeled interconnect each layer.
//!
//! Community-aware renumbering is exactly what makes contiguous
//! partitioning effective here: communities land whole inside one
//! partition, so the halo — and with it the exchange traffic — shrinks,
//! extending the paper's locality argument across device boundaries.

use gnnadvisor_gpu::{BlockResources, Engine, GpuSpec, KernelMetrics, DEFAULT_REGS_PER_THREAD};
use gnnadvisor_graph::reorder::{renumber, RenumberConfig};
use gnnadvisor_graph::{Csr, NodeId};

use crate::kernels::advisor::AdvisorKernel;
use crate::memory::organize::organize_shared;
use crate::tuning::params::RuntimeParams;
use crate::workload::group::{partition_groups, NeighborGroup};
use crate::{CoreError, Result};

/// Multi-GPU setup.
#[derive(Debug, Clone)]
pub struct MultiGpuConfig {
    /// Number of devices.
    pub num_gpus: usize,
    /// Per-direction interconnect bandwidth between any device pair, GB/s
    /// (NVLink-class ~25, PCIe-class ~12).
    pub interconnect_gbps: f64,
    /// Per-exchange fixed latency, microseconds.
    pub interconnect_latency_us: f64,
    /// Device preset used for every GPU.
    pub spec: GpuSpec,
}

impl Default for MultiGpuConfig {
    fn default() -> Self {
        Self {
            num_gpus: 2,
            interconnect_gbps: 25.0,
            interconnect_latency_us: 8.0,
            spec: GpuSpec::quadro_p6000(),
        }
    }
}

/// Outcome of one multi-GPU aggregation pass.
#[derive(Debug, Clone)]
pub struct MultiGpuRun {
    /// Per-device kernel metrics.
    pub per_gpu: Vec<KernelMetrics>,
    /// Distinct halo rows each device must receive.
    pub halo_rows: Vec<usize>,
    /// Total bytes exchanged across the interconnect.
    pub halo_bytes: u64,
    /// Time of the halo exchange phase, ms (the slowest device's receive).
    pub exchange_ms: f64,
    /// End-to-end time: exchange + slowest device's kernel, ms.
    pub elapsed_ms: f64,
}

impl MultiGpuRun {
    /// Speedup over a given single-device time.
    pub fn speedup_over(&self, single_ms: f64) -> f64 {
        single_ms / self.elapsed_ms.max(1e-12)
    }
}

/// Splits `0..n` into `parts` contiguous ranges with approximately equal
/// edge counts (prefix balance over `row_ptr`). `parts == 0` is rejected:
/// an empty partition list would silently drop the whole graph.
pub fn partition_nodes(graph: &Csr, parts: usize) -> Result<Vec<(usize, usize)>> {
    if parts == 0 {
        return Err(CoreError::InvalidParams {
            reason: "partition_nodes needs at least 1 partition".into(),
        });
    }
    let n = graph.num_nodes();
    let e = graph.num_edges().max(1);
    let row_ptr = graph.row_ptr();
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        let target = e * (p + 1) / parts;
        let mut end = start;
        while end < n && row_ptr[end] < target {
            end += 1;
        }
        if p + 1 == parts {
            end = n;
        }
        ranges.push((start, end.max(start)));
        start = end.max(start);
    }
    Ok(ranges)
}

/// Runs one aggregation pass at dimensionality `dim` across the devices.
pub fn run_multi_gpu_aggregation(
    graph: &Csr,
    dim: usize,
    params: RuntimeParams,
    config: &MultiGpuConfig,
) -> Result<MultiGpuRun> {
    if config.num_gpus == 0 {
        return Err(CoreError::InvalidParams {
            reason: "num_gpus must be >= 1".into(),
        });
    }
    params.validate()?;
    // Honor `params.renumber` the same way the single-device runtime does:
    // permute the graph *before* partitioning, so communities land whole
    // inside contiguous partitions and the halo shrinks.
    let renumbered;
    let graph = if params.renumber {
        let r = renumber(graph, &RenumberConfig::default())?;
        renumbered = graph.permute(&r.permutation)?;
        &renumbered
    } else {
        graph
    };
    let groups = partition_groups(graph, params.group_size)?;
    let ranges = partition_nodes(graph, config.num_gpus)?;

    // All simulated devices share one spec; one engine prices them all
    // instead of rebuilding cache state per device per call.
    let engine = Engine::new(config.spec.clone());
    let mut per_gpu = Vec::with_capacity(config.num_gpus);
    let mut halo_rows = Vec::with_capacity(config.num_gpus);
    let row_bytes = dim as u64 * 4;

    for &(lo, hi) in &ranges {
        // This device's share of the group workload.
        let local: Vec<NeighborGroup> = groups
            .iter()
            .copied()
            .filter(|g| (lo..hi).contains(&(g.node as usize)))
            .collect();
        // Halo: distinct external neighbors referenced by local groups.
        let mut halo: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        for g in &local {
            for &u in &graph.col_idx()[g.start as usize..g.end as usize] {
                if !(lo..hi).contains(&(u as usize)) {
                    halo.insert(u);
                }
            }
        }
        halo_rows.push(halo.len());

        if local.is_empty() {
            per_gpu.push(KernelMetrics {
                name: "advisor_aggregation".into(),
                ..Default::default()
            });
            continue;
        }
        let layout = organize_shared(&local, params.groups_per_block());
        let resources = BlockResources {
            regs_per_thread: DEFAULT_REGS_PER_THREAD,
            smem_bytes: layout.shared_bytes(dim),
            threads: params.threads_per_block,
        };
        let fits = params.use_shared && config.spec.occupancy_limit(&resources).is_launchable();
        let kernel = AdvisorKernel::new(graph, &local, fits.then_some(&layout), dim, params);
        per_gpu.push(crate::submit::launch(&engine, &kernel)?);
    }

    // Exchange phase: every device receives its halo rows; transfers
    // overlap across devices, so the phase lasts as long as the largest
    // receive.
    let bw_bytes_per_ms = config.interconnect_gbps * 1e6;
    let exchange_ms = halo_rows
        .iter()
        .map(|&rows| {
            config.interconnect_latency_us / 1000.0
                + rows as f64 * row_bytes as f64 / bw_bytes_per_ms
        })
        .fold(0.0f64, f64::max);
    let halo_bytes: u64 = halo_rows.iter().map(|&r| r as u64 * row_bytes).sum();
    let kernel_ms = per_gpu.iter().map(|m| m.time_ms).fold(0.0f64, f64::max);

    Ok(MultiGpuRun {
        per_gpu,
        halo_rows,
        halo_bytes,
        exchange_ms,
        elapsed_ms: exchange_ms + kernel_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_graph::generators::{community_graph, CommunityParams};
    use gnnadvisor_graph::reorder::{renumber, RenumberConfig};

    fn graph() -> Csr {
        let params = CommunityParams {
            num_nodes: 12_000,
            num_edges: 300_000,
            mean_community: 80,
            community_size_cv: 0.3,
            inter_fraction: 0.08,
            shuffle_ids: true,
        };
        community_graph(&params, 404).expect("valid").0
    }

    fn base_params() -> RuntimeParams {
        RuntimeParams {
            renumber: false,
            ..RuntimeParams::default()
        }
    }

    #[test]
    fn partitions_tile_nodes_and_balance_edges() {
        let g = graph();
        for parts in [1, 2, 4, 7] {
            let ranges = partition_nodes(&g, parts).expect("non-zero parts");
            assert_eq!(ranges.len(), parts);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges[parts - 1].1, g.num_nodes());
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
            }
            if parts > 1 {
                let edges: Vec<usize> = ranges
                    .iter()
                    .map(|&(a, b)| g.row_ptr()[b] - g.row_ptr()[a])
                    .collect();
                let max = *edges.iter().max().expect("non-empty");
                let min = *edges.iter().min().expect("non-empty");
                assert!(max < min * 2 + g.max_degree(), "edge balance: {edges:?}");
            }
        }
    }

    #[test]
    fn more_gpus_reduce_elapsed_time_after_renumbering() {
        // Scaling requires partition locality: on the raw shuffled graph
        // every neighbor is remote and 4 devices barely help (asserted in
        // `renumbering_shrinks_the_halo`); after community renumbering the
        // partitions cut few edges and devices scale.
        let g = graph();
        let r = renumber(&g, &RenumberConfig::default()).expect("runs");
        let g = g.permute(&r.permutation).expect("valid");
        let single = run_multi_gpu_aggregation(
            &g,
            32,
            base_params(),
            &MultiGpuConfig {
                num_gpus: 1,
                ..Default::default()
            },
        )
        .expect("runs");
        let quad = run_multi_gpu_aggregation(
            &g,
            32,
            base_params(),
            &MultiGpuConfig {
                num_gpus: 4,
                ..Default::default()
            },
        )
        .expect("runs");
        assert!(
            quad.elapsed_ms < single.elapsed_ms,
            "4 GPUs {} ms vs 1 GPU {} ms",
            quad.elapsed_ms,
            single.elapsed_ms
        );
        assert!(quad.speedup_over(single.elapsed_ms) > 1.3);
        assert_eq!(single.halo_bytes, 0, "one device has no halo");
        assert!(quad.halo_bytes > 0);
    }

    #[test]
    fn renumbering_shrinks_the_halo() {
        let g = graph();
        let r = renumber(&g, &RenumberConfig::default()).expect("runs");
        let ordered = g.permute(&r.permutation).expect("valid");
        let cfg = MultiGpuConfig {
            num_gpus: 4,
            ..Default::default()
        };
        let shuffled_run = run_multi_gpu_aggregation(&g, 32, base_params(), &cfg).expect("runs");
        let ordered_run =
            run_multi_gpu_aggregation(&ordered, 32, base_params(), &cfg).expect("runs");
        assert!(
            ordered_run.halo_bytes * 2 < shuffled_run.halo_bytes,
            "communities inside partitions must shrink the halo: {} vs {}",
            ordered_run.halo_bytes,
            shuffled_run.halo_bytes
        );
        assert!(ordered_run.exchange_ms < shuffled_run.exchange_ms);
    }

    #[test]
    fn zero_gpus_rejected() {
        let g = graph();
        let cfg = MultiGpuConfig {
            num_gpus: 0,
            ..Default::default()
        };
        assert!(run_multi_gpu_aggregation(&g, 16, base_params(), &cfg).is_err());
    }

    #[test]
    fn zero_partitions_are_an_error_not_an_empty_tiling() {
        // Regression: `partition_nodes(g, 0)` used to return an empty Vec,
        // silently dropping every node from the tiling.
        let g = graph();
        assert!(matches!(
            partition_nodes(&g, 0),
            Err(CoreError::InvalidParams { .. })
        ));
    }

    #[test]
    fn renumber_param_is_applied_before_partitioning() {
        // Regression: `run_multi_gpu_aggregation` used to ignore
        // `params.renumber` entirely. Asking for renumbering must now
        // match manually permuting the graph first — and beat not
        // renumbering at all on a shuffled community graph.
        let g = graph();
        let cfg = MultiGpuConfig {
            num_gpus: 4,
            ..Default::default()
        };
        let auto = run_multi_gpu_aggregation(
            &g,
            32,
            RuntimeParams {
                renumber: true,
                ..base_params()
            },
            &cfg,
        )
        .expect("runs");
        let r = renumber(&g, &RenumberConfig::default()).expect("runs");
        let ordered = g.permute(&r.permutation).expect("valid");
        let manual = run_multi_gpu_aggregation(&ordered, 32, base_params(), &cfg).expect("runs");
        assert_eq!(
            auto.halo_bytes, manual.halo_bytes,
            "renumber=true must permute exactly like the single-device runtime"
        );
        let ignored = run_multi_gpu_aggregation(&g, 32, base_params(), &cfg).expect("runs");
        assert!(
            auto.halo_bytes * 2 < ignored.halo_bytes,
            "honored renumbering must shrink the halo: {} vs {}",
            auto.halo_bytes,
            ignored.halo_bytes
        );
    }
}
