//! Memory optimization (Section 6): block-aware shared-memory organizing.
//!
//! (Community-aware node renumbering, the other half of Section 6, lives in
//! `gnnadvisor-graph::reorder` because it is a pure graph transformation;
//! the runtime applies it before building workloads.)

pub mod organize;

pub use organize::{organize_shared, SharedLayout};
