//! Algorithm 1: block-aware memory organizing (Section 6.2).
//!
//! Each neighbor group mapped to a thread gets three properties:
//!
//! - `node_shared_addr` — the shared-memory slot holding the intra-group
//!   aggregation result of its target node,
//! - `node` — the target node (carried by the group itself),
//! - `group_leader` — whether this thread flushes the slot to global
//!   memory when the block finishes.
//!
//! The routine walks groups in block order: the first group of a block
//! always opens slot 0 and leads; a later group reuses its predecessor's
//! slot when both aggregate the same node, otherwise it opens the next slot
//! and leads. This is a line-by-line transcription of the paper's
//! Algorithm 1 with `thread_per_block` generalized to groups-per-block
//! (each group occupies `dw` threads under dimension sharing).

use crate::workload::group::NeighborGroup;

/// The per-group shared-memory layout of one launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedLayout {
    /// Shared-memory slot of each group (parallel to the group array).
    pub shared_addr: Vec<u32>,
    /// Leader flag of each group.
    pub leader: Vec<bool>,
    /// Maximum slots used by any block; shared bytes per block =
    /// `max_slots * D * 4`.
    pub max_slots: u32,
    /// Groups hosted per block (the walk's reset period).
    pub groups_per_block: usize,
}

impl SharedLayout {
    /// Shared-memory bytes per block for embedding dimensionality `dim`.
    pub fn shared_bytes(&self, dim: usize) -> usize {
        self.max_slots as usize * dim * core::mem::size_of::<f32>()
    }

    /// Number of leader groups (one flush each).
    pub fn num_leaders(&self) -> usize {
        self.leader.iter().filter(|&&l| l).count()
    }
}

/// Runs Algorithm 1 over a group partition.
///
/// # Examples
///
/// ```
/// use gnnadvisor_core::memory::organize::organize_shared;
/// use gnnadvisor_core::workload::group::partition_groups;
/// use gnnadvisor_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(4).clique(&[0, 1, 2, 3]).build().unwrap();
/// let groups = partition_groups(&g, 2).unwrap();
/// let layout = organize_shared(&groups, 4);
/// // One leader per node-run per block flushes shared -> global.
/// assert!(layout.num_leaders() <= groups.len());
/// assert!(layout.shared_bytes(16) <= 4 * 16 * 4);
/// ```
///
/// # Panics
///
/// Panics if `groups_per_block` is zero.
pub fn organize_shared(groups: &[NeighborGroup], groups_per_block: usize) -> SharedLayout {
    assert!(groups_per_block > 0, "groups_per_block must be positive");
    let ngroups = groups.len();
    let mut shared_addr = vec![0u32; ngroups];
    let mut leader = vec![false; ngroups];
    let mut max_slots = 0u32;

    // Algorithm 1, lines 1–24.
    let mut cnt = 0usize;
    let mut local_cnt = 0u32;
    let mut last = 0u32;
    while cnt < ngroups {
        if cnt.is_multiple_of(groups_per_block) {
            // First thread of a block: open slot 0, lead.
            shared_addr[cnt] = local_cnt;
            last = groups[cnt].node;
            leader[cnt] = true;
        } else if groups[cnt].node == last {
            // Same target node as predecessor: share the slot.
            shared_addr[cnt] = local_cnt;
        } else {
            // New target node: open the next slot, lead.
            local_cnt += 1;
            shared_addr[cnt] = local_cnt;
            last = groups[cnt].node;
            leader[cnt] = true;
        }
        max_slots = max_slots.max(local_cnt + 1);
        cnt += 1;
        if cnt.is_multiple_of(groups_per_block) {
            local_cnt = 0;
        }
    }

    SharedLayout {
        shared_addr,
        leader,
        max_slots,
        groups_per_block,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::group::partition_groups;
    use gnnadvisor_graph::generators::barabasi_albert;

    fn group(node: u32, start: u32, end: u32) -> NeighborGroup {
        NeighborGroup { node, start, end }
    }

    #[test]
    fn paper_walkthrough() {
        // Two blocks of 3 groups; node runs: [A, A, B | B, C, C].
        let groups = [
            group(0, 0, 4),
            group(0, 4, 8),
            group(1, 8, 12),
            group(1, 12, 16),
            group(2, 16, 20),
            group(2, 20, 24),
        ];
        let layout = organize_shared(&groups, 3);
        assert_eq!(layout.shared_addr, vec![0, 0, 1, 0, 1, 1]);
        assert_eq!(layout.leader, vec![true, false, true, true, true, false]);
        assert_eq!(layout.max_slots, 2);
        // Node 1 spans the block boundary: it legitimately has two leaders,
        // one per block (each flushes its block's partial result).
        assert_eq!(layout.num_leaders(), 4);
    }

    #[test]
    fn one_leader_per_node_run_within_block() {
        let g = barabasi_albert(300, 4, 7).expect("valid");
        let groups = partition_groups(&g, 3).expect("valid");
        let gpb = 16;
        let layout = organize_shared(&groups, gpb);
        for (b, chunk) in groups.chunks(gpb).enumerate() {
            let base = b * gpb;
            let mut prev_node = None;
            for (i, grp) in chunk.iter().enumerate() {
                let is_new_run = prev_node != Some(grp.node);
                assert_eq!(
                    layout.leader[base + i],
                    is_new_run,
                    "group {} in block {b}: leader iff first of its node run",
                    base + i
                );
                prev_node = Some(grp.node);
            }
        }
    }

    #[test]
    fn same_node_same_slot_within_block() {
        let g = barabasi_albert(300, 4, 8).expect("valid");
        let groups = partition_groups(&g, 2).expect("valid");
        let gpb = 32;
        let layout = organize_shared(&groups, gpb);
        for (b, chunk) in groups.chunks(gpb).enumerate() {
            let base = b * gpb;
            let mut slot_of_node: std::collections::HashMap<u32, u32> = Default::default();
            for (i, grp) in chunk.iter().enumerate() {
                let slot = layout.shared_addr[base + i];
                if let Some(&s) = slot_of_node.get(&grp.node) {
                    assert_eq!(s, slot, "node {} uses two slots in block {b}", grp.node);
                } else {
                    // Slots must also be exclusive to one node per block.
                    assert!(
                        !slot_of_node.values().any(|&s| s == slot),
                        "slot {slot} reused by a different node in block {b}"
                    );
                    slot_of_node.insert(grp.node, slot);
                }
            }
        }
    }

    #[test]
    fn slots_bounded_by_block_size() {
        let g = barabasi_albert(500, 3, 9).expect("valid");
        let groups = partition_groups(&g, 1).expect("valid");
        let layout = organize_shared(&groups, 8);
        assert!(
            layout.max_slots <= 8,
            "a block cannot need more slots than groups"
        );
        assert!(layout.max_slots >= 1);
    }

    #[test]
    fn shared_bytes_formula() {
        let groups = [group(0, 0, 1), group(1, 1, 2)];
        let layout = organize_shared(&groups, 2);
        assert_eq!(layout.max_slots, 2);
        assert_eq!(layout.shared_bytes(16), 2 * 16 * 4);
    }

    #[test]
    fn empty_partition() {
        let layout = organize_shared(&[], 4);
        assert_eq!(layout.max_slots, 0);
        assert_eq!(layout.num_leaders(), 0);
        assert_eq!(layout.shared_bytes(64), 0);
    }

    #[test]
    #[should_panic(expected = "groups_per_block must be positive")]
    fn zero_gpb_panics() {
        organize_shared(&[group(0, 0, 1)], 0);
    }
}
