//! Multi-stream serving runtime with dynamic batching.
//!
//! GNNAdvisor's runtime (the paper, Section 4) optimizes one forward pass
//! at a time. This module layers an *inference server* on top of the same
//! simulated device: an open-loop arrival process ([`arrivals`]) feeds a
//! bounded admission queue ([`queue`]), a dynamic batcher coalesces
//! waiting requests under a max-batch / max-delay policy ([`batcher`]),
//! and the dispatched batches execute on concurrent simulated streams
//! ([`gnnadvisor_gpu::stream`]) so host↔device copies overlap compute and
//! small kernels co-reside on the SMs.
//!
//! The split of responsibilities:
//!
//! - [`plan_batches`] is pure policy — trace in, dispatch schedule and
//!   shed count out;
//! - [`BatchExecutor`] is the model-specific part (what device work one
//!   batch costs), implemented by the model layer so this crate never
//!   depends on it;
//! - [`simulate`] ties them together: batches round-robin across
//!   `streams` simulated streams, each pinned to its dispatch instant via
//!   a release time, and per-request latency is measured from arrival to
//!   the completion of its batch's last op on the simulated clock.
//!
//! Everything downstream of the seed is deterministic: the report is
//! byte-identical across runs and across `GNNADVISOR_SIM_THREADS`
//! settings (the engine's pricing is worker-count-invariant and the
//! stream scheduler is serial).

pub mod arrivals;
pub mod batcher;
pub mod queue;

pub use arrivals::{generate_arrivals, ArrivalConfig, Request};
pub use batcher::{plan_batches, BatchPlan, BatchPolicy, DispatchedBatch, QueuePolicy};
pub use queue::BoundedQueue;

use gnnadvisor_gpu::{Engine, Kernel, StreamSim, Workload};

use crate::{CoreError, Result};

/// One unit of device work an executor plans for a batch.
pub enum DeviceWork {
    /// A full simulated kernel (priced through the engine's block model).
    Kernel(Box<dyn Kernel>),
    /// A roofline-priced dense update, `m×k · k×n`.
    Gemm {
        /// Rows of the left operand.
        m: usize,
        /// Columns of the right operand.
        n: usize,
        /// Shared inner dimension.
        k: usize,
    },
    /// A host↔device copy over the single copy engine.
    Transfer {
        /// Payload size in bytes.
        bytes: u64,
    },
}

impl core::fmt::Debug for DeviceWork {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeviceWork::Kernel(k) => f.debug_tuple("Kernel").field(&k.name()).finish(),
            DeviceWork::Gemm { m, n, k } => f
                .debug_struct("Gemm")
                .field("m", m)
                .field("n", n)
                .field("k", k)
                .finish(),
            DeviceWork::Transfer { bytes } => {
                f.debug_struct("Transfer").field("bytes", bytes).finish()
            }
        }
    }
}

/// The device-side plan for one dispatched batch, executed in order on
/// one stream.
#[derive(Debug, Default)]
pub struct BatchWork {
    /// Ordered device ops; typically h2d copy, kernels/GEMMs, d2h copy.
    pub ops: Vec<DeviceWork>,
}

/// The model-specific half of the server: turns a dispatched batch into
/// device work. Implemented by the model layer (e.g. a GCN forward over
/// the batch's coalesced graphs).
pub trait BatchExecutor {
    /// Plans the device ops for `batch`.
    fn plan(&mut self, batch: &DispatchedBatch) -> Result<BatchWork>;
}

/// Server shape: stream count plus the queue and batch policies.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Concurrent device streams batches round-robin across.
    pub streams: usize,
    /// Admission-queue backpressure.
    pub queue: QueuePolicy,
    /// Dynamic batching policy.
    pub batch: BatchPolicy,
}

/// Aggregate latency/throughput statistics of one serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Requests that completed on the device.
    pub completed: usize,
    /// Requests rejected by the admission queue.
    pub shed: u64,
    /// Batches dispatched to the device.
    pub batches: usize,
    /// Median request latency (arrival → batch completion), ms.
    pub p50_ms: f64,
    /// 95th-percentile request latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile request latency, ms.
    pub p99_ms: f64,
    /// Mean request latency, ms.
    pub mean_ms: f64,
    /// Completed requests per second of simulated schedule time.
    pub throughput_rps: f64,
    /// End of the last device op on the simulated clock, ms.
    pub makespan_ms: f64,
    /// Total SM-side busy cycles across the schedule.
    pub kernel_busy_cycles: u64,
    /// Total copy-engine busy cycles across the schedule.
    pub copy_busy_cycles: u64,
}

impl ServingReport {
    /// Renders the report as a deterministic fixed-precision table (the
    /// CLI prints this; CI diffs it byte-for-byte across runs and worker
    /// counts).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("serving-sim report\n");
        out.push_str(&format!("  requests completed   {}\n", self.completed));
        out.push_str(&format!("  requests shed        {}\n", self.shed));
        out.push_str(&format!("  batches dispatched   {}\n", self.batches));
        out.push_str(&format!("  latency p50          {:.3} ms\n", self.p50_ms));
        out.push_str(&format!("  latency p95          {:.3} ms\n", self.p95_ms));
        out.push_str(&format!("  latency p99          {:.3} ms\n", self.p99_ms));
        out.push_str(&format!("  latency mean         {:.3} ms\n", self.mean_ms));
        out.push_str(&format!(
            "  throughput           {:.3} req/s\n",
            self.throughput_rps
        ));
        out.push_str(&format!(
            "  makespan             {:.3} ms\n",
            self.makespan_ms
        ));
        out.push_str(&format!(
            "  kernel busy cycles   {}\n",
            self.kernel_busy_cycles
        ));
        out.push_str(&format!(
            "  copy engine cycles   {}\n",
            self.copy_busy_cycles
        ));
        out
    }
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// Runs the full serving pipeline on the simulated device: plans batches
/// from `arrivals`, round-robins them across `cfg.streams` streams (each
/// batch released at its dispatch instant), executes the multi-stream
/// schedule, and aggregates per-request latencies.
pub fn simulate(
    engine: &Engine,
    arrivals: &[Request],
    cfg: &ServingConfig,
    exec: &mut dyn BatchExecutor,
) -> Result<ServingReport> {
    if cfg.streams == 0 {
        return Err(CoreError::Serving {
            reason: "streams must be at least 1".into(),
        });
    }
    let plan = plan_batches(arrivals, &cfg.queue, &cfg.batch)?;
    let spec = engine.spec();

    let mut sim = StreamSim::new(engine);
    let streams: Vec<_> = (0..cfg.streams).map(|_| sim.stream()).collect();
    // (batch index, completion handle): completion is the batch's last op.
    let mut tails = Vec::with_capacity(plan.batches.len());
    for (i, batch) in plan.batches.iter().enumerate() {
        let stream = streams[i % streams.len()];
        let release = spec.ms_to_cycles(batch.dispatch_ms);
        let work = exec.plan(batch)?;
        let mut tail = None;
        for op in &work.ops {
            let workload = match op {
                DeviceWork::Kernel(k) => Workload::Kernel(&**k),
                DeviceWork::Gemm { m, n, k } => Workload::Gemm {
                    m: *m,
                    n: *n,
                    k: *k,
                },
                DeviceWork::Transfer { bytes } => Workload::Transfer { bytes: *bytes },
            };
            let (handle, _) = sim.enqueue_at(stream, workload, release)?;
            tail = Some(handle);
        }
        tails.push((i, tail));
    }
    let report = sim.run()?;

    let mut latencies: Vec<f64> = Vec::new();
    for (i, tail) in tails {
        let batch = &plan.batches[i];
        // A batch with no device ops completes at its dispatch instant.
        let end_cycles = match tail {
            Some(handle) => report.op_end(handle).expect("committed op has a span"),
            None => spec.ms_to_cycles(batch.dispatch_ms),
        };
        let end_ms = spec.cycles_to_ms(end_cycles);
        for request in &batch.requests {
            latencies.push((end_ms - request.arrival_ms).max(0.0));
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));

    let completed = latencies.len();
    let mean_ms = if completed == 0 {
        0.0
    } else {
        latencies.iter().sum::<f64>() / completed as f64
    };
    let throughput_rps = if report.makespan_ms > 0.0 {
        completed as f64 * 1000.0 / report.makespan_ms
    } else {
        0.0
    };
    Ok(ServingReport {
        completed,
        shed: plan.shed,
        batches: plan.batches.len(),
        p50_ms: percentile(&latencies, 50.0),
        p95_ms: percentile(&latencies, 95.0),
        p99_ms: percentile(&latencies, 99.0),
        mean_ms,
        throughput_rps,
        makespan_ms: report.makespan_ms,
        kernel_busy_cycles: report.kernel_busy_cycles,
        copy_busy_cycles: report.copy_busy_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_gpu::GpuSpec;

    /// A model-free executor: per batch, an h2d copy, one GEMM whose rows
    /// scale with batch size, and a d2h copy.
    struct GemmExecutor {
        rows_per_request: usize,
        dim: usize,
    }

    impl BatchExecutor for GemmExecutor {
        fn plan(&mut self, batch: &DispatchedBatch) -> crate::Result<BatchWork> {
            let rows = self.rows_per_request * batch.requests.len();
            let bytes = (rows * self.dim * 4) as u64;
            Ok(BatchWork {
                ops: vec![
                    DeviceWork::Transfer { bytes },
                    DeviceWork::Gemm {
                        m: rows,
                        n: self.dim,
                        k: self.dim,
                    },
                    DeviceWork::Transfer { bytes },
                ],
            })
        }
    }

    fn trace() -> Vec<Request> {
        generate_arrivals(&ArrivalConfig {
            num_requests: 64,
            mean_interarrival_ms: 0.4,
            num_components: 4,
            seed: 7,
        })
        .expect("valid")
    }

    fn config(streams: usize) -> ServingConfig {
        ServingConfig {
            streams,
            queue: QueuePolicy { capacity: 32 },
            batch: BatchPolicy {
                max_batch: 8,
                max_delay_ms: 2.0,
            },
        }
    }

    fn exec() -> GemmExecutor {
        GemmExecutor {
            rows_per_request: 512,
            dim: 64,
        }
    }

    #[test]
    fn reports_are_identical_across_runs_and_worker_counts() {
        let mut renders = Vec::new();
        for sim_threads in [1, 1, 4] {
            let engine = Engine::builder(GpuSpec::quadro_p6000())
                .sim_threads(sim_threads)
                .build()
                .expect("valid");
            let report = simulate(&engine, &trace(), &config(3), &mut exec()).expect("runs");
            renders.push(report.render());
        }
        assert_eq!(renders[0], renders[1], "same engine, same report");
        assert_eq!(renders[0], renders[2], "worker count must not leak");
    }

    #[test]
    fn latency_stats_are_ordered_and_complete() {
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let report = simulate(&engine, &trace(), &config(2), &mut exec()).expect("runs");
        assert_eq!(report.completed as u64 + report.shed, 64);
        assert!(report.completed > 0);
        assert!(report.batches > 0);
        assert!(report.p50_ms <= report.p95_ms);
        assert!(report.p95_ms <= report.p99_ms);
        assert!(report.p50_ms > 0.0);
        assert!(report.throughput_rps > 0.0);
        assert!(report.makespan_ms > 0.0);
    }

    #[test]
    fn more_streams_never_slow_the_schedule() {
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let serialized = simulate(&engine, &trace(), &config(1), &mut exec()).expect("runs");
        let overlapped = simulate(&engine, &trace(), &config(4), &mut exec()).expect("runs");
        assert!(
            overlapped.makespan_ms <= serialized.makespan_ms,
            "overlap {} ms vs serialized {} ms",
            overlapped.makespan_ms,
            serialized.makespan_ms
        );
        assert_eq!(overlapped.completed, serialized.completed);
    }

    #[test]
    fn overload_sheds_and_reports_it() {
        // Offered load far beyond capacity: a burst of simultaneous
        // arrivals against a tiny queue.
        let arrivals: Vec<Request> = (0..40)
            .map(|id| Request {
                id,
                arrival_ms: 0.0,
                component: 0,
            })
            .collect();
        let cfg = ServingConfig {
            streams: 2,
            queue: QueuePolicy { capacity: 6 },
            batch: BatchPolicy {
                max_batch: 8,
                max_delay_ms: 4.0,
            },
        };
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let report = simulate(&engine, &arrivals, &cfg, &mut exec()).expect("runs");
        assert!(report.shed > 0, "overload must shed");
        assert_eq!(report.completed as u64 + report.shed, 40);
    }

    #[test]
    fn empty_trace_yields_an_empty_report() {
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let report = simulate(&engine, &[], &config(2), &mut exec()).expect("runs");
        assert_eq!(report.completed, 0);
        assert_eq!(report.batches, 0);
        assert_eq!(report.p99_ms, 0.0);
        assert_eq!(report.throughput_rps, 0.0);
    }

    #[test]
    fn zero_streams_is_rejected() {
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let err = simulate(&engine, &[], &config(0), &mut exec());
        assert!(matches!(err, Err(CoreError::Serving { .. })));
    }
}
