//! Multi-stream serving runtime with dynamic batching.
//!
//! GNNAdvisor's runtime (the paper, Section 4) optimizes one forward pass
//! at a time. This module layers an *inference server* on top of the same
//! simulated device: an open-loop arrival process ([`arrivals`]) feeds a
//! bounded admission queue ([`queue`]), a dynamic batcher coalesces
//! waiting requests under a max-batch / max-delay policy ([`batcher`]),
//! and the dispatched batches execute on concurrent simulated streams
//! ([`gnnadvisor_gpu::stream`]) so host↔device copies overlap compute and
//! small kernels co-reside on the SMs.
//!
//! The split of responsibilities:
//!
//! - [`plan_batches`] is pure policy — trace in, dispatch schedule and
//!   shed count out;
//! - [`BatchExecutor`] is the model-specific part (what device work one
//!   batch costs), implemented by the model layer so this crate never
//!   depends on it;
//! - [`simulate`] ties them together: batches round-robin across
//!   `streams` simulated streams, each pinned to its dispatch instant via
//!   a release time, and per-request latency is measured from arrival to
//!   the completion of its batch's last op on the simulated clock.
//!
//! With a fault plan attached to the engine (see [`gnnadvisor_gpu::fault`])
//! the device may kill a batch's ops; a [`RetryPolicy`] re-submits the
//! batch with exponential backoff up to a bounded attempt count, and an
//! optional per-request deadline reclassifies too-late completions. Every
//! request lands in exactly one bucket — the report upholds
//! `completed + shed + failed + deadline_missed == arrivals`.
//!
//! Everything downstream of the seed is deterministic: the report is
//! byte-identical across runs and across `GNNADVISOR_SIM_THREADS`
//! settings (the engine's pricing is worker-count-invariant, fault
//! verdicts are drawn on the serial enqueue path, and the stream
//! scheduler is serial).

pub mod arrivals;
pub mod batcher;
pub mod queue;
pub mod retry;

pub use arrivals::{
    generate_arrivals, generate_mmpp_arrivals, replay_trace, ArrivalConfig, MmppConfig, Request,
};
pub use batcher::{plan_batches, BatchPlan, BatchPolicy, DispatchedBatch, QueuePolicy};
pub use queue::BoundedQueue;
pub use retry::RetryPolicy;

use gnnadvisor_gpu::stream::OpHandle;
use gnnadvisor_gpu::{Engine, Kernel, StreamSim, Workload};

use crate::{CoreError, Result};

/// One unit of device work an executor plans for a batch.
pub enum DeviceWork {
    /// A full simulated kernel (priced through the engine's block model).
    Kernel(Box<dyn Kernel>),
    /// A roofline-priced dense update, `m×k · k×n`.
    Gemm {
        /// Rows of the left operand.
        m: usize,
        /// Columns of the right operand.
        n: usize,
        /// Shared inner dimension.
        k: usize,
    },
    /// A host↔device copy over the single copy engine.
    Transfer {
        /// Payload size in bytes.
        bytes: u64,
    },
}

impl core::fmt::Debug for DeviceWork {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeviceWork::Kernel(k) => f.debug_tuple("Kernel").field(&k.name()).finish(),
            DeviceWork::Gemm { m, n, k } => f
                .debug_struct("Gemm")
                .field("m", m)
                .field("n", n)
                .field("k", k)
                .finish(),
            DeviceWork::Transfer { bytes } => {
                f.debug_struct("Transfer").field("bytes", bytes).finish()
            }
        }
    }
}

/// The device-side plan for one dispatched batch, executed in order on
/// one stream.
#[derive(Debug, Default)]
pub struct BatchWork {
    /// Ordered device ops; typically h2d copy, kernels/GEMMs, d2h copy.
    pub ops: Vec<DeviceWork>,
}

/// The model-specific half of the server: turns a dispatched batch into
/// device work. Implemented by the model layer (e.g. a GCN forward over
/// the batch's coalesced graphs).
pub trait BatchExecutor {
    /// Plans the device ops for `batch`.
    fn plan(&mut self, batch: &DispatchedBatch) -> Result<BatchWork>;
}

/// Server shape: stream count plus the queue, batch, and retry policies.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Concurrent device streams batches round-robin across.
    pub streams: usize,
    /// Admission-queue backpressure.
    pub queue: QueuePolicy,
    /// Dynamic batching policy.
    pub batch: BatchPolicy,
    /// Re-submission policy for batches whose device work faulted (the
    /// default never retries).
    pub retry: RetryPolicy,
    /// Per-request latency deadline: a request whose batch completes
    /// later than this after its arrival counts as `deadline_missed`
    /// instead of `completed`. `None` disables the check.
    pub deadline_ms: Option<f64>,
}

/// Aggregate latency/throughput statistics of one serving simulation.
///
/// Every admitted request lands in exactly one of `completed`, `failed`,
/// or `deadline_missed`; with `shed` they partition the arrival trace:
/// `completed + shed + failed + deadline_missed == arrivals`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Requests that completed on the device within their deadline.
    pub completed: usize,
    /// Requests rejected by the admission queue.
    pub shed: u64,
    /// Requests whose batch exhausted its retry budget on faults.
    pub failed: usize,
    /// Requests served later than the configured deadline.
    pub deadline_missed: usize,
    /// Batch re-submissions caused by faults (not counting first
    /// attempts).
    pub retries: u64,
    /// Batches dispatched to the device.
    pub batches: usize,
    /// Median request latency (arrival → batch completion), ms.
    pub p50_ms: f64,
    /// 95th-percentile request latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile request latency, ms.
    pub p99_ms: f64,
    /// Mean request latency, ms.
    pub mean_ms: f64,
    /// All served requests (completed + deadline-missed) per second of
    /// simulated schedule time.
    pub throughput_rps: f64,
    /// Requests completed *within deadline* per second of simulated
    /// schedule time — the number retries are meant to restore.
    pub goodput_rps: f64,
    /// End of the last device op on the simulated clock, ms.
    pub makespan_ms: f64,
    /// Total SM-side busy cycles across the schedule.
    pub kernel_busy_cycles: u64,
    /// Total copy-engine busy cycles across the schedule.
    pub copy_busy_cycles: u64,
    /// Duration-weighted mean achieved occupancy over the schedule's
    /// kernel spans, in `[0, 1]` (see
    /// [`gnnadvisor_gpu::StreamReport::mean_kernel_occupancy`]).
    pub mean_kernel_occupancy: f64,
}

impl ServingReport {
    /// Renders the report as a deterministic fixed-precision table (the
    /// CLI prints this; CI diffs it byte-for-byte across runs and worker
    /// counts).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("serving-sim report\n");
        out.push_str(&format!("  requests completed   {}\n", self.completed));
        out.push_str(&format!("  requests shed        {}\n", self.shed));
        out.push_str(&format!("  requests failed      {}\n", self.failed));
        out.push_str(&format!(
            "  deadline missed      {}\n",
            self.deadline_missed
        ));
        out.push_str(&format!("  batch retries        {}\n", self.retries));
        out.push_str(&format!("  batches dispatched   {}\n", self.batches));
        out.push_str(&format!("  latency p50          {:.3} ms\n", self.p50_ms));
        out.push_str(&format!("  latency p95          {:.3} ms\n", self.p95_ms));
        out.push_str(&format!("  latency p99          {:.3} ms\n", self.p99_ms));
        out.push_str(&format!("  latency mean         {:.3} ms\n", self.mean_ms));
        out.push_str(&format!(
            "  throughput           {:.3} req/s\n",
            self.throughput_rps
        ));
        out.push_str(&format!(
            "  goodput              {:.3} req/s\n",
            self.goodput_rps
        ));
        out.push_str(&format!(
            "  makespan             {:.3} ms\n",
            self.makespan_ms
        ));
        out.push_str(&format!(
            "  kernel busy cycles   {}\n",
            self.kernel_busy_cycles
        ));
        out.push_str(&format!(
            "  copy engine cycles   {}\n",
            self.copy_busy_cycles
        ));
        out.push_str(&format!(
            "  kernel occupancy     {:.4}\n",
            self.mean_kernel_occupancy
        ));
        out
    }
}

/// Nearest-rank percentile of an ascending-sorted sample: the value at
/// rank `ceil(p/100 · n)` (1-based), so p50 of `[1, 9]` is `1` (rank 1)
/// and every percentile of a singleton is that sample. Shared with the
/// cluster layer's per-tenant statistics.
pub(crate) fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// How one batch's retry chain ended.
enum BatchOutcome {
    /// Some attempt ran fault-free; its last op (if any) is the batch's
    /// completion point. `None` means the batch planned no device ops and
    /// completes at its dispatch instant.
    Done(Option<OpHandle>),
    /// Every attempt faulted; the batch's requests failed.
    Exhausted,
}

/// Runs the full serving pipeline on the simulated device: plans batches
/// from `arrivals`, round-robins them across `cfg.streams` streams (each
/// batch released at its dispatch instant), executes the multi-stream
/// schedule, and aggregates per-request latencies.
///
/// With a fault plan on the engine, a batch whose op faults is re-
/// submitted on the same stream under `cfg.retry`: the retry may not
/// start before the failed attempt's estimated end plus backoff (the
/// stream's FIFO independently guarantees it starts after the failed
/// ops, which burn their full priced time on the device). A batch that
/// faults on every attempt marks its requests `failed`.
pub fn simulate(
    engine: &Engine,
    arrivals: &[Request],
    cfg: &ServingConfig,
    exec: &mut dyn BatchExecutor,
) -> Result<ServingReport> {
    if cfg.streams == 0 {
        return Err(CoreError::Serving {
            reason: "streams must be at least 1".into(),
        });
    }
    cfg.retry.validate()?;
    if let Some(d) = cfg.deadline_ms {
        if !(d.is_finite() && d > 0.0) {
            return Err(CoreError::Serving {
                reason: format!("deadline_ms must be positive and finite, got {d}"),
            });
        }
    }
    let plan = plan_batches(arrivals, &cfg.queue, &cfg.batch)?;
    let spec = engine.spec();

    let mut sim = StreamSim::new(engine);
    let streams: Vec<_> = (0..cfg.streams).map(|_| sim.stream()).collect();
    let mut outcomes: Vec<BatchOutcome> = Vec::with_capacity(plan.batches.len());
    let mut retries = 0u64;
    for (i, batch) in plan.batches.iter().enumerate() {
        let stream = streams[i % streams.len()];
        let work = exec.plan(batch)?;
        let mut release_ms = batch.dispatch_ms;
        let mut outcome = BatchOutcome::Exhausted;
        for attempt in 1..=cfg.retry.max_attempts {
            let release = spec.ms_to_cycles(release_ms);
            let mut tail = None;
            let mut attempt_cycles = 0u64;
            let mut faulted = false;
            for op in &work.ops {
                let workload = match op {
                    DeviceWork::Kernel(k) => Workload::Kernel(&**k),
                    DeviceWork::Gemm { m, n, k } => Workload::Gemm {
                        m: *m,
                        n: *n,
                        k: *k,
                    },
                    DeviceWork::Transfer { bytes } => Workload::Transfer { bytes: *bytes },
                };
                let enq = sim.try_enqueue_at(stream, workload, release)?;
                attempt_cycles += spec.ms_to_cycles(enq.metrics.time_ms());
                if enq.fault.is_some() {
                    // The faulted op still burns its time on the stream;
                    // the attempt's remaining ops are never issued.
                    faulted = true;
                    break;
                }
                tail = Some(enq.handle);
            }
            if !faulted {
                outcome = BatchOutcome::Done(tail);
                break;
            }
            if attempt == cfg.retry.max_attempts {
                break;
            }
            retries += 1;
            release_ms =
                spec.cycles_to_ms(release + attempt_cycles) + cfg.retry.backoff_ms(i, attempt);
        }
        outcomes.push(outcome);
    }
    let report = sim.run()?;

    let mut latencies: Vec<f64> = Vec::new();
    let mut failed = 0usize;
    let mut deadline_missed = 0usize;
    // Schedule span for rate accounting: the last device op OR the last
    // batch completion instant — a batch of zero device ops completes at
    // its dispatch instant without extending the op makespan.
    let mut span_ms = report.makespan_ms;
    for (i, outcome) in outcomes.into_iter().enumerate() {
        let batch = &plan.batches[i];
        match outcome {
            BatchOutcome::Exhausted => failed += batch.requests.len(),
            BatchOutcome::Done(tail) => {
                let end_cycles = match tail {
                    Some(handle) => report.op_end(handle).expect("committed op has a span"),
                    None => spec.ms_to_cycles(batch.dispatch_ms),
                };
                let end_ms = spec.cycles_to_ms(end_cycles);
                span_ms = span_ms.max(end_ms);
                for request in &batch.requests {
                    let latency = (end_ms - request.arrival_ms).max(0.0);
                    match cfg.deadline_ms {
                        Some(d) if latency > d => deadline_missed += 1,
                        _ => latencies.push(latency),
                    }
                }
            }
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));

    let completed = latencies.len();
    let mean_ms = if completed == 0 {
        0.0
    } else {
        latencies.iter().sum::<f64>() / completed as f64
    };
    let served = completed + deadline_missed;
    let throughput_rps = if span_ms > 0.0 {
        served as f64 * 1000.0 / span_ms
    } else {
        0.0
    };
    let goodput_rps = if span_ms > 0.0 {
        completed as f64 * 1000.0 / span_ms
    } else {
        0.0
    };
    Ok(ServingReport {
        completed,
        shed: plan.shed,
        failed,
        deadline_missed,
        retries,
        batches: plan.batches.len(),
        p50_ms: percentile(&latencies, 50.0),
        p95_ms: percentile(&latencies, 95.0),
        p99_ms: percentile(&latencies, 99.0),
        mean_ms,
        throughput_rps,
        goodput_rps,
        makespan_ms: report.makespan_ms,
        kernel_busy_cycles: report.kernel_busy_cycles,
        copy_busy_cycles: report.copy_busy_cycles,
        mean_kernel_occupancy: report.mean_kernel_occupancy(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_gpu::GpuSpec;

    /// A model-free executor: per batch, an h2d copy, one GEMM whose rows
    /// scale with batch size, and a d2h copy.
    struct GemmExecutor {
        rows_per_request: usize,
        dim: usize,
    }

    impl BatchExecutor for GemmExecutor {
        fn plan(&mut self, batch: &DispatchedBatch) -> crate::Result<BatchWork> {
            let rows = self.rows_per_request * batch.requests.len();
            let bytes = (rows * self.dim * 4) as u64;
            Ok(BatchWork {
                ops: vec![
                    DeviceWork::Transfer { bytes },
                    DeviceWork::Gemm {
                        m: rows,
                        n: self.dim,
                        k: self.dim,
                    },
                    DeviceWork::Transfer { bytes },
                ],
            })
        }
    }

    fn trace() -> Vec<Request> {
        generate_arrivals(&ArrivalConfig {
            num_requests: 64,
            mean_interarrival_ms: 0.4,
            num_components: 4,
            seed: 7,
        })
        .expect("valid")
    }

    fn config(streams: usize) -> ServingConfig {
        ServingConfig {
            streams,
            queue: QueuePolicy { capacity: 32 },
            batch: BatchPolicy {
                max_batch: 8,
                max_delay_ms: 2.0,
            },
            retry: RetryPolicy::default(),
            deadline_ms: None,
        }
    }

    fn exec() -> GemmExecutor {
        GemmExecutor {
            rows_per_request: 512,
            dim: 64,
        }
    }

    #[test]
    fn reports_are_identical_across_runs_and_worker_counts() {
        let mut renders = Vec::new();
        for sim_threads in [1, 1, 4] {
            let engine = Engine::builder(GpuSpec::quadro_p6000())
                .sim_threads(sim_threads)
                .build()
                .expect("valid");
            let report = simulate(&engine, &trace(), &config(3), &mut exec()).expect("runs");
            renders.push(report.render());
        }
        assert_eq!(renders[0], renders[1], "same engine, same report");
        assert_eq!(renders[0], renders[2], "worker count must not leak");
    }

    #[test]
    fn latency_stats_are_ordered_and_complete() {
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let report = simulate(&engine, &trace(), &config(2), &mut exec()).expect("runs");
        assert_eq!(report.completed as u64 + report.shed, 64);
        assert!(report.completed > 0);
        assert!(report.batches > 0);
        assert!(report.p50_ms <= report.p95_ms);
        assert!(report.p95_ms <= report.p99_ms);
        assert!(report.p50_ms > 0.0);
        assert!(report.throughput_rps > 0.0);
        assert!(report.makespan_ms > 0.0);
    }

    #[test]
    fn more_streams_never_slow_the_schedule() {
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let serialized = simulate(&engine, &trace(), &config(1), &mut exec()).expect("runs");
        let overlapped = simulate(&engine, &trace(), &config(4), &mut exec()).expect("runs");
        assert!(
            overlapped.makespan_ms <= serialized.makespan_ms,
            "overlap {} ms vs serialized {} ms",
            overlapped.makespan_ms,
            serialized.makespan_ms
        );
        assert_eq!(overlapped.completed, serialized.completed);
    }

    #[test]
    fn overload_sheds_and_reports_it() {
        // Offered load far beyond capacity: a burst of simultaneous
        // arrivals against a tiny queue.
        let arrivals: Vec<Request> = (0..40)
            .map(|id| Request {
                id,
                arrival_ms: 0.0,
                component: 0,
            })
            .collect();
        let cfg = ServingConfig {
            streams: 2,
            queue: QueuePolicy { capacity: 6 },
            batch: BatchPolicy {
                max_batch: 8,
                max_delay_ms: 4.0,
            },
            retry: RetryPolicy::default(),
            deadline_ms: None,
        };
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let report = simulate(&engine, &arrivals, &cfg, &mut exec()).expect("runs");
        assert!(report.shed > 0, "overload must shed");
        assert_eq!(report.completed as u64 + report.shed, 40);
    }

    #[test]
    fn empty_trace_yields_an_empty_report() {
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let report = simulate(&engine, &[], &config(2), &mut exec()).expect("runs");
        assert_eq!(report.completed, 0);
        assert_eq!(report.batches, 0);
        assert_eq!(report.p99_ms, 0.0);
        assert_eq!(report.throughput_rps, 0.0);
    }

    #[test]
    fn zero_streams_is_rejected() {
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let err = simulate(&engine, &[], &config(0), &mut exec());
        assert!(matches!(err, Err(CoreError::Serving { .. })));
    }

    #[test]
    fn invalid_retry_and_deadline_are_rejected() {
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let mut cfg = config(1);
        cfg.retry.max_attempts = 0;
        assert!(matches!(
            simulate(&engine, &[], &cfg, &mut exec()),
            Err(CoreError::Serving { .. })
        ));
        let mut cfg = config(1);
        cfg.deadline_ms = Some(0.0);
        assert!(matches!(
            simulate(&engine, &[], &cfg, &mut exec()),
            Err(CoreError::Serving { .. })
        ));
    }

    /// An executor that plans no device work at all — the zero-op batch
    /// regression case.
    struct NoopExecutor;

    impl BatchExecutor for NoopExecutor {
        fn plan(&mut self, _batch: &DispatchedBatch) -> crate::Result<BatchWork> {
            Ok(BatchWork::default())
        }
    }

    #[test]
    fn zero_op_batches_still_report_throughput() {
        // Regression: with no device ops the stream schedule is empty
        // (makespan 0) but requests still complete at their batches'
        // dispatch instants; throughput must fall back to the last
        // completion instant instead of reporting 0.
        let arrivals = vec![
            Request {
                id: 0,
                arrival_ms: 1.0,
                component: 0,
            },
            Request {
                id: 1,
                arrival_ms: 3.0,
                component: 0,
            },
        ];
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let report = simulate(&engine, &arrivals, &config(2), &mut NoopExecutor).expect("runs");
        assert_eq!(report.completed, 2);
        assert_eq!(report.makespan_ms, 0.0, "no device ops were scheduled");
        // The first batch flushes at its delay deadline 1.0 + 2.0 = 3.0 ms
        // (the deadline fires before the 3.0 ms arrival joins), and the
        // second drains at 3.0 + 2.0 = 5.0 ms, so the rate is 2 req / 5 ms.
        assert!(
            (report.throughput_rps - 2.0 * 1000.0 / 5.0).abs() < 1e-6,
            "throughput {} must use the last completion instant",
            report.throughput_rps
        );
        assert_eq!(report.goodput_rps, report.throughput_rps);
    }

    /// Fault-plan fixture: a fresh engine with a uniform fault rate.
    fn chaotic_engine(rate: f64, seed: u64, sim_threads: usize) -> Engine {
        use gnnadvisor_gpu::{FaultConfig, FaultPlan};
        Engine::builder(GpuSpec::quadro_p6000())
            .sim_threads(sim_threads)
            .fault_plan(std::sync::Arc::new(
                FaultPlan::new(FaultConfig::uniform(rate, seed)).expect("valid rate"),
            ))
            .build()
            .expect("valid")
    }

    #[test]
    fn retries_restore_completions_under_faults() {
        let no_retry = simulate(
            &chaotic_engine(0.3, 13, 1),
            &trace(),
            &config(2),
            &mut exec(),
        )
        .expect("runs");
        assert!(
            no_retry.failed > 0,
            "a 30 % fault rate with no retries must fail some batches"
        );
        assert_eq!(no_retry.retries, 0);

        let mut cfg = config(2);
        cfg.retry = RetryPolicy {
            max_attempts: 4,
            backoff_base_ms: 0.25,
            seed: 13,
            ..RetryPolicy::default()
        };
        let with_retry =
            simulate(&chaotic_engine(0.3, 13, 1), &trace(), &cfg, &mut exec()).expect("runs");
        assert!(with_retry.retries > 0);
        assert!(
            with_retry.completed > no_retry.completed,
            "retries must recover completions: {} vs {}",
            with_retry.completed,
            no_retry.completed
        );
        for r in [&no_retry, &with_retry] {
            assert_eq!(
                r.completed as u64 + r.shed + r.failed as u64 + r.deadline_missed as u64,
                64,
                "conservation"
            );
        }
    }

    #[test]
    fn deadlines_reclassify_late_completions() {
        let mut cfg = config(1);
        cfg.deadline_ms = Some(0.5);
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let tight = simulate(&engine, &trace(), &cfg, &mut exec()).expect("runs");
        assert!(tight.deadline_missed > 0, "0.5 ms must be missed by some");
        assert_eq!(
            tight.completed as u64
                + tight.shed
                + tight.failed as u64
                + tight.deadline_missed as u64,
            64
        );
        // Latency percentiles describe only within-deadline requests.
        assert!(tight.p99_ms <= 0.5 + 1e-9);
        // Goodput counts only in-deadline completions.
        assert!(tight.goodput_rps <= tight.throughput_rps);

        cfg.deadline_ms = Some(1e9);
        let loose = simulate(&engine, &trace(), &cfg, &mut exec()).expect("runs");
        assert_eq!(loose.deadline_missed, 0);
        assert_eq!(loose.goodput_rps, loose.throughput_rps);
    }

    #[test]
    fn nearest_rank_percentiles_are_pinned_for_tiny_samples() {
        // Nearest-rank on 1-3 completed batches is where an off-by-one
        // hides: rank = ceil(p/100 · n), 1-based. Pin the hand-computed
        // values so any indexing drift fails loudly.
        let one = [5.0];
        for p in [50.0, 95.0, 99.0] {
            assert_eq!(percentile(&one, p), 5.0, "n=1, p{p}");
        }
        let two = [1.0, 9.0];
        assert_eq!(percentile(&two, 50.0), 1.0, "p50 of [1,9] is rank 1");
        assert_eq!(percentile(&two, 95.0), 9.0);
        assert_eq!(percentile(&two, 99.0), 9.0);
        let three = [1.0, 5.0, 9.0];
        assert_eq!(percentile(&three, 50.0), 5.0, "p50 of [1,5,9] is rank 2");
        assert_eq!(percentile(&three, 95.0), 9.0);
        assert_eq!(percentile(&three, 99.0), 9.0);
        // Degenerate edges: an empty sample reports 0, p0 clamps to the
        // first sample, p100 to the last.
        assert_eq!(percentile(&[], 99.0), 0.0);
        assert_eq!(percentile(&three, 0.0), 1.0);
        assert_eq!(percentile(&three, 100.0), 9.0);
    }

    #[test]
    fn exhausted_batches_fail_exactly_once_even_past_the_deadline() {
        // A batch that exhausts max_attempts *and* would also have missed
        // its deadline must count as failed XOR deadline_missed, never
        // both. Fault rate 1.0 exhausts every batch; the tiny positive
        // deadline would reclassify any completion — so any double
        // counting breaks conservation here.
        let mut cfg = config(2);
        cfg.retry = RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 0.25,
            seed: 3,
            ..RetryPolicy::default()
        };
        cfg.deadline_ms = Some(1e-6);
        let report =
            simulate(&chaotic_engine(1.0, 3, 1), &trace(), &cfg, &mut exec()).expect("runs");
        assert!(report.retries > 0, "every batch retries before exhausting");
        assert_eq!(report.completed, 0);
        assert_eq!(
            report.deadline_missed, 0,
            "exhausted batches must not double-count as deadline misses"
        );
        assert_eq!(
            report.failed as u64 + report.shed,
            64,
            "every admitted request fails exactly once"
        );
    }

    #[test]
    fn faulted_reports_are_identical_across_runs_and_worker_counts() {
        let mut cfg = config(3);
        cfg.retry = RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 0.5,
            seed: 21,
            ..RetryPolicy::default()
        };
        cfg.deadline_ms = Some(50.0);
        let render_at = |sim_threads: usize| {
            simulate(
                &chaotic_engine(0.25, 21, sim_threads),
                &trace(),
                &cfg,
                &mut exec(),
            )
            .expect("runs")
            .render()
        };
        let serial = render_at(1);
        assert_eq!(render_at(1), serial, "same seed, same report");
        assert_eq!(render_at(4), serial, "worker count must not leak");
    }

    mod chaos_proptest {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Under any fault rate, retry budget, and deadline, every
            /// request lands in exactly one bucket, and the report bytes
            /// do not depend on the simulation worker count.
            #[test]
            fn conservation_holds_under_chaos(
                // The vendored proptest only samples integer ranges, so
                // fault rate and deadline are drawn as integers and mapped.
                rate_permille in 0u64..700,
                max_attempts in 1u64..4,
                deadline_ms in 0u64..60,
                seed in 0u64..1000,
            ) {
                let rate = rate_permille as f64 / 1000.0;
                let max_attempts = max_attempts as usize;
                let deadline = (deadline_ms > 0).then_some(deadline_ms as f64);
                let arrivals = generate_arrivals(&ArrivalConfig {
                    num_requests: 24,
                    mean_interarrival_ms: 0.6,
                    num_components: 3,
                    seed,
                }).expect("valid");
                let mut cfg = config(2);
                cfg.retry = RetryPolicy {
                    max_attempts,
                    backoff_base_ms: 0.25,
                    seed,
                    ..RetryPolicy::default()
                };
                cfg.deadline_ms = deadline;
                let run = |sim_threads: usize| {
                    simulate(
                        &chaotic_engine(rate, seed, sim_threads),
                        &arrivals,
                        &cfg,
                        &mut exec(),
                    ).expect("runs")
                };
                let report = run(1);
                prop_assert_eq!(
                    report.completed as u64
                        + report.shed
                        + report.failed as u64
                        + report.deadline_missed as u64,
                    24,
                    "conservation: {:?}",
                    &report
                );
                prop_assert_eq!(run(4).render(), report.render());
                // Disjointness of failed vs deadline_missed: failures come
                // only from retry exhaustion, so removing the deadline must
                // leave the failed count untouched (the deadline
                // reclassifies completions, never failures) and every
                // former deadline miss must complete instead.
                let mut no_deadline = cfg.clone();
                no_deadline.deadline_ms = None;
                let open = simulate(
                    &chaotic_engine(rate, seed, 1),
                    &arrivals,
                    &no_deadline,
                    &mut exec(),
                ).expect("runs");
                prop_assert_eq!(open.failed, report.failed, "deadline leaks into failed");
                prop_assert_eq!(open.deadline_missed, 0);
                prop_assert_eq!(
                    open.completed,
                    report.completed + report.deadline_missed,
                    "every deadline miss must be a completion without the deadline"
                );
            }
        }
    }
}
