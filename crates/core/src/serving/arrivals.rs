//! Deterministic synthetic request arrivals.
//!
//! A serving benchmark needs an open-loop workload: requests arrive on
//! their own schedule whether or not the server keeps up. The classic
//! model is a Poisson process — i.i.d. exponential inter-arrival gaps —
//! which this module draws from the workspace's seeded [`SmallRng`], so a
//! `(config, seed)` pair always yields the same trace, bit for bit.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{CoreError, Result};

/// One inference request in an arrival trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Monotonically increasing request id (index in the trace).
    pub id: usize,
    /// Arrival instant on the serving clock, milliseconds.
    pub arrival_ms: f64,
    /// Which input graph (batch component) the request asks about.
    pub component: usize,
}

/// Parameters of the synthetic arrival process.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalConfig {
    /// Total requests to generate.
    pub num_requests: usize,
    /// Mean gap between consecutive arrivals, milliseconds (the offered
    /// rate is `1000 / mean_interarrival_ms` requests per second).
    pub mean_interarrival_ms: f64,
    /// Requests pick a component uniformly from `0..num_components`.
    pub num_components: usize,
    /// RNG seed; equal seeds give equal traces.
    pub seed: u64,
}

impl ArrivalConfig {
    fn validate(&self) -> Result<()> {
        if !(self.mean_interarrival_ms.is_finite() && self.mean_interarrival_ms > 0.0) {
            return Err(CoreError::Serving {
                reason: format!(
                    "mean_interarrival_ms must be positive and finite, got {}",
                    self.mean_interarrival_ms
                ),
            });
        }
        if self.num_components == 0 {
            return Err(CoreError::Serving {
                reason: "num_components must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// Draws the arrival trace: Poisson arrivals (exponential gaps of the
/// configured mean) with uniformly chosen components, sorted by time by
/// construction.
pub fn generate_arrivals(cfg: &ArrivalConfig) -> Result<Vec<Request>> {
    cfg.validate()?;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut clock_ms = 0.0f64;
    let mut out = Vec::with_capacity(cfg.num_requests);
    for id in 0..cfg.num_requests {
        // Inverse-CDF sample: u in [0, 1) makes 1 - u in (0, 1], so the
        // log is finite and the gap non-negative.
        let u: f64 = rng.gen();
        let gap = -cfg.mean_interarrival_ms * (1.0 - u).ln();
        clock_ms += gap;
        let component = rng.gen_range(0..cfg.num_components);
        out.push(Request {
            id,
            arrival_ms: clock_ms,
            component,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ArrivalConfig {
        ArrivalConfig {
            num_requests: 400,
            mean_interarrival_ms: 2.5,
            num_components: 8,
            seed: 42,
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = generate_arrivals(&cfg()).expect("valid");
        let b = generate_arrivals(&cfg()).expect("valid");
        assert_eq!(a, b);
        let mut other = cfg();
        other.seed = 43;
        let c = generate_arrivals(&other).expect("valid");
        assert_ne!(a, c);
    }

    #[test]
    fn traces_are_sorted_with_valid_components() {
        let trace = generate_arrivals(&cfg()).expect("valid");
        assert_eq!(trace.len(), 400);
        for pair in trace.windows(2) {
            assert!(pair[0].arrival_ms <= pair[1].arrival_ms);
        }
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r.id, i);
            assert!(r.arrival_ms >= 0.0);
            assert!(r.component < 8);
        }
    }

    #[test]
    fn mean_gap_tracks_the_configured_rate() {
        let mut big = cfg();
        big.num_requests = 20_000;
        let trace = generate_arrivals(&big).expect("valid");
        let span = trace.last().unwrap().arrival_ms;
        let mean = span / big.num_requests as f64;
        // 20k exponential draws: the sample mean sits well within 5 %.
        assert!(
            (mean - 2.5).abs() < 0.125,
            "sample mean {mean} strays from 2.5"
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut zero_gap = cfg();
        zero_gap.mean_interarrival_ms = 0.0;
        assert!(generate_arrivals(&zero_gap).is_err());
        let mut no_components = cfg();
        no_components.num_components = 0;
        assert!(generate_arrivals(&no_components).is_err());
    }
}
