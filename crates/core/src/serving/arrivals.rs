//! Deterministic synthetic request arrivals.
//!
//! A serving benchmark needs an open-loop workload: requests arrive on
//! their own schedule whether or not the server keeps up. Three processes
//! are available, all seeded so a `(config, seed)` pair always yields the
//! same trace, bit for bit:
//!
//! - [`generate_arrivals`] — the classic **Poisson** process: i.i.d.
//!   exponential inter-arrival gaps at one mean rate.
//! - [`generate_mmpp_arrivals`] — a **Markov-modulated Poisson process**:
//!   the process switches between phases (each with its own mean gap)
//!   after exponentially distributed dwells, producing the bursty,
//!   state-switching traffic real front ends see. A phase mixing a 10x
//!   rate spread stresses admission and autoscaling far harder than any
//!   single-rate Poisson stream.
//! - [`replay_trace`] — **trace replay**: the caller supplies the arrival
//!   instants (e.g. recorded production timestamps) and only the
//!   component assignment is drawn from the seed.
//!
//! Every generator guarantees *strictly* increasing arrival instants (two
//! requests never alias one timestamp) and rejects degenerate configs
//! with typed [`CoreError::Serving`] errors instead of returning an empty
//! trace or spinning.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{CoreError, Result};

/// One inference request in an arrival trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Monotonically increasing request id (index in the trace).
    pub id: usize,
    /// Arrival instant on the serving clock, milliseconds.
    pub arrival_ms: f64,
    /// Which input graph (batch component) the request asks about.
    pub component: usize,
}

/// Parameters of the synthetic arrival process.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalConfig {
    /// Total requests to generate; zero is rejected (an empty trace is a
    /// config bug, not a workload).
    pub num_requests: usize,
    /// Mean gap between consecutive arrivals, milliseconds (the offered
    /// rate is `1000 / mean_interarrival_ms` requests per second).
    pub mean_interarrival_ms: f64,
    /// Requests pick a component uniformly from `0..num_components`.
    pub num_components: usize,
    /// RNG seed; equal seeds give equal traces.
    pub seed: u64,
}

fn validate_common(num_requests: usize, num_components: usize) -> Result<()> {
    if num_requests == 0 {
        return Err(CoreError::Serving {
            reason: "num_requests must be at least 1 (an empty trace is a config bug)".into(),
        });
    }
    if num_components == 0 {
        return Err(CoreError::Serving {
            reason: "num_components must be at least 1".into(),
        });
    }
    Ok(())
}

fn validate_gap(name: &str, gap_ms: f64) -> Result<()> {
    if !(gap_ms.is_finite() && gap_ms > 0.0) {
        return Err(CoreError::Serving {
            reason: format!("{name} must be positive and finite, got {gap_ms}"),
        });
    }
    Ok(())
}

impl ArrivalConfig {
    fn validate(&self) -> Result<()> {
        validate_common(self.num_requests, self.num_components)?;
        validate_gap("mean_interarrival_ms", self.mean_interarrival_ms)
    }
}

/// One exponential gap of the given mean. `u in [0, 1)` makes `1 - u` in
/// `(0, 1]`, so the log is finite and the gap non-negative; the floor
/// keeps consecutive instants *strictly* increasing even on the
/// measure-zero draw `u == 0`.
fn exp_gap(rng: &mut SmallRng, mean_ms: f64) -> f64 {
    let u: f64 = rng.gen();
    (-mean_ms * (1.0 - u).ln()).max(mean_ms * 1e-12)
}

/// Draws the arrival trace: Poisson arrivals (exponential gaps of the
/// configured mean) with uniformly chosen components, strictly sorted by
/// time by construction.
pub fn generate_arrivals(cfg: &ArrivalConfig) -> Result<Vec<Request>> {
    cfg.validate()?;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut clock_ms = 0.0f64;
    let mut out = Vec::with_capacity(cfg.num_requests);
    for id in 0..cfg.num_requests {
        clock_ms += exp_gap(&mut rng, cfg.mean_interarrival_ms);
        let component = rng.gen_range(0..cfg.num_components);
        out.push(Request {
            id,
            arrival_ms: clock_ms,
            component,
        });
    }
    Ok(out)
}

/// Parameters of the Markov-modulated Poisson process.
#[derive(Debug, Clone, PartialEq)]
pub struct MmppConfig {
    /// Total requests to generate; zero is rejected.
    pub num_requests: usize,
    /// Mean inter-arrival gap of each phase, milliseconds. Two phases
    /// with a large rate spread (e.g. `[0.1, 2.0]`) produce the classic
    /// burst/lull traffic shape; one phase degenerates to Poisson.
    pub phase_interarrival_ms: Vec<f64>,
    /// Mean dwell in a phase before switching, milliseconds
    /// (exponentially distributed; the next phase is drawn uniformly
    /// among the *other* phases).
    pub mean_dwell_ms: f64,
    /// Requests pick a component uniformly from `0..num_components`.
    pub num_components: usize,
    /// RNG seed; equal seeds give equal traces.
    pub seed: u64,
}

impl MmppConfig {
    fn validate(&self) -> Result<()> {
        validate_common(self.num_requests, self.num_components)?;
        if self.phase_interarrival_ms.is_empty() {
            return Err(CoreError::Serving {
                reason: "MMPP needs at least one phase".into(),
            });
        }
        for (i, &gap) in self.phase_interarrival_ms.iter().enumerate() {
            validate_gap(&format!("phase {i} mean_interarrival_ms"), gap)?;
        }
        validate_gap("mean_dwell_ms", self.mean_dwell_ms)
    }
}

/// Draws a bursty, state-switching arrival trace: a continuous-time
/// Markov chain over the configured phases emits Poisson arrivals at each
/// phase's rate. Strictly sorted by construction.
pub fn generate_mmpp_arrivals(cfg: &MmppConfig) -> Result<Vec<Request>> {
    cfg.validate()?;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let phases = &cfg.phase_interarrival_ms;
    let mut phase = 0usize;
    let mut clock_ms = 0.0f64;
    // End of the current dwell; arrivals that would land beyond it switch
    // phase first (the remaining gap is re-drawn at the new rate — the
    // standard memoryless-restart approximation).
    let mut dwell_end_ms = exp_gap(&mut rng, cfg.mean_dwell_ms);
    let mut out = Vec::with_capacity(cfg.num_requests);
    for id in 0..cfg.num_requests {
        let mut next = clock_ms + exp_gap(&mut rng, phases[phase]);
        while next > dwell_end_ms && phases.len() > 1 {
            // Switch to a uniformly drawn *different* phase at the dwell
            // boundary and restart the gap there.
            let hop = rng.gen_range(0..phases.len() - 1);
            phase = if hop >= phase { hop + 1 } else { hop };
            clock_ms = dwell_end_ms;
            dwell_end_ms += exp_gap(&mut rng, cfg.mean_dwell_ms);
            next = clock_ms + exp_gap(&mut rng, phases[phase]);
        }
        clock_ms = next;
        let component = rng.gen_range(0..cfg.num_components);
        out.push(Request {
            id,
            arrival_ms: clock_ms,
            component,
        });
    }
    Ok(out)
}

/// Replays caller-supplied arrival instants as a trace, drawing only the
/// component assignment from the seed. Instants must be finite,
/// non-negative, and strictly increasing — production timestamps that tie
/// should be de-duplicated upstream (sub-microsecond nudges), because the
/// planner's delay triggers assume a total order.
pub fn replay_trace(instants_ms: &[f64], num_components: usize, seed: u64) -> Result<Vec<Request>> {
    validate_common(instants_ms.len(), num_components)?;
    for (i, &at) in instants_ms.iter().enumerate() {
        if !(at.is_finite() && at >= 0.0) {
            return Err(CoreError::Serving {
                reason: format!("trace instant {i} must be non-negative and finite, got {at}"),
            });
        }
        if i > 0 && at <= instants_ms[i - 1] {
            return Err(CoreError::Serving {
                reason: format!(
                    "trace instants must be strictly increasing: {at} ms at index {i} \
                     after {} ms",
                    instants_ms[i - 1]
                ),
            });
        }
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    Ok(instants_ms
        .iter()
        .enumerate()
        .map(|(id, &arrival_ms)| Request {
            id,
            arrival_ms,
            component: rng.gen_range(0..num_components),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ArrivalConfig {
        ArrivalConfig {
            num_requests: 400,
            mean_interarrival_ms: 2.5,
            num_components: 8,
            seed: 42,
        }
    }

    fn mmpp_cfg() -> MmppConfig {
        MmppConfig {
            num_requests: 400,
            phase_interarrival_ms: vec![0.1, 2.0],
            mean_dwell_ms: 20.0,
            num_components: 8,
            seed: 42,
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = generate_arrivals(&cfg()).expect("valid");
        let b = generate_arrivals(&cfg()).expect("valid");
        assert_eq!(a, b);
        let mut other = cfg();
        other.seed = 43;
        let c = generate_arrivals(&other).expect("valid");
        assert_ne!(a, c);
    }

    #[test]
    fn traces_are_sorted_with_valid_components() {
        let trace = generate_arrivals(&cfg()).expect("valid");
        assert_eq!(trace.len(), 400);
        for pair in trace.windows(2) {
            assert!(pair[0].arrival_ms < pair[1].arrival_ms, "strictly sorted");
        }
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r.id, i);
            assert!(r.arrival_ms >= 0.0);
            assert!(r.component < 8);
        }
    }

    #[test]
    fn mean_gap_tracks_the_configured_rate() {
        let mut big = cfg();
        big.num_requests = 20_000;
        let trace = generate_arrivals(&big).expect("valid");
        let span = trace.last().unwrap().arrival_ms;
        let mean = span / big.num_requests as f64;
        // 20k exponential draws: the sample mean sits well within 5 %.
        assert!(
            (mean - 2.5).abs() < 0.125,
            "sample mean {mean} strays from 2.5"
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut zero_gap = cfg();
        zero_gap.mean_interarrival_ms = 0.0;
        assert!(generate_arrivals(&zero_gap).is_err());
        let mut negative = cfg();
        negative.mean_interarrival_ms = -2.0;
        assert!(generate_arrivals(&negative).is_err());
        let mut nan = cfg();
        nan.mean_interarrival_ms = f64::NAN;
        assert!(generate_arrivals(&nan).is_err());
        let mut inf = cfg();
        inf.mean_interarrival_ms = f64::INFINITY;
        assert!(generate_arrivals(&inf).is_err());
        let mut no_components = cfg();
        no_components.num_components = 0;
        assert!(generate_arrivals(&no_components).is_err());
        // Regression: an empty trace used to come back as Ok(vec![]).
        let mut empty = cfg();
        empty.num_requests = 0;
        assert!(matches!(
            generate_arrivals(&empty),
            Err(CoreError::Serving { .. })
        ));
    }

    #[test]
    fn mmpp_traces_are_deterministic_and_strictly_sorted() {
        let a = generate_mmpp_arrivals(&mmpp_cfg()).expect("valid");
        let b = generate_mmpp_arrivals(&mmpp_cfg()).expect("valid");
        assert_eq!(a, b);
        assert_eq!(a.len(), 400);
        for pair in a.windows(2) {
            assert!(pair[0].arrival_ms < pair[1].arrival_ms, "strictly sorted");
        }
        let mut other = mmpp_cfg();
        other.seed = 43;
        assert_ne!(a, generate_mmpp_arrivals(&other).expect("valid"));
    }

    #[test]
    fn mmpp_is_burstier_than_poisson_at_the_same_span() {
        // Squared coefficient of variation of the gaps: Poisson sits near
        // 1; a 20x rate spread across phases pushes MMPP well above it.
        let gap_cv2 = |trace: &[Request]| {
            let gaps: Vec<f64> = trace
                .windows(2)
                .map(|w| w[1].arrival_ms - w[0].arrival_ms)
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let mut big_mmpp = mmpp_cfg();
        big_mmpp.num_requests = 8_000;
        let mmpp = generate_mmpp_arrivals(&big_mmpp).expect("valid");
        let mut big_poisson = cfg();
        big_poisson.num_requests = 8_000;
        let poisson = generate_arrivals(&big_poisson).expect("valid");
        let (bursty, flat) = (gap_cv2(&mmpp), gap_cv2(&poisson));
        assert!(
            bursty > flat * 1.5,
            "MMPP gap CV² {bursty:.2} must exceed Poisson {flat:.2}"
        );
    }

    #[test]
    fn single_phase_mmpp_degenerates_to_a_valid_process() {
        let cfg = MmppConfig {
            phase_interarrival_ms: vec![1.0],
            ..mmpp_cfg()
        };
        let trace = generate_mmpp_arrivals(&cfg).expect("valid");
        assert_eq!(trace.len(), 400);
        for pair in trace.windows(2) {
            assert!(pair[0].arrival_ms < pair[1].arrival_ms);
        }
    }

    #[test]
    fn invalid_mmpp_configs_are_rejected() {
        let mut no_phases = mmpp_cfg();
        no_phases.phase_interarrival_ms.clear();
        assert!(generate_mmpp_arrivals(&no_phases).is_err());
        let mut bad_phase = mmpp_cfg();
        bad_phase.phase_interarrival_ms[1] = f64::NAN;
        assert!(generate_mmpp_arrivals(&bad_phase).is_err());
        let mut zero_dwell = mmpp_cfg();
        zero_dwell.mean_dwell_ms = 0.0;
        assert!(generate_mmpp_arrivals(&zero_dwell).is_err());
        let mut empty = mmpp_cfg();
        empty.num_requests = 0;
        assert!(generate_mmpp_arrivals(&empty).is_err());
    }

    #[test]
    fn trace_replay_preserves_instants_and_seeds_components() {
        let instants = [0.5, 1.25, 3.0, 3.5];
        let a = replay_trace(&instants, 4, 9).expect("valid");
        let b = replay_trace(&instants, 4, 9).expect("valid");
        assert_eq!(a, b);
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.id, i);
            assert_eq!(r.arrival_ms, instants[i]);
            assert!(r.component < 4);
        }
        assert_ne!(a, replay_trace(&instants, 4, 10).expect("valid"));
    }

    #[test]
    fn invalid_traces_are_rejected() {
        assert!(replay_trace(&[], 2, 0).is_err(), "empty trace");
        assert!(replay_trace(&[1.0], 0, 0).is_err(), "zero components");
        assert!(replay_trace(&[-1.0], 2, 0).is_err(), "negative instant");
        assert!(replay_trace(&[f64::NAN], 2, 0).is_err(), "NaN instant");
        assert!(replay_trace(&[f64::INFINITY], 2, 0).is_err());
        assert!(replay_trace(&[1.0, 1.0], 2, 0).is_err(), "tied instants");
        assert!(replay_trace(&[2.0, 1.0], 2, 0).is_err(), "unsorted");
    }

    mod arrival_proptest {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// For any seed and rate, both generators produce strictly
            /// sorted instants confined to a sane window (non-negative,
            /// finite, ids dense).
            #[test]
            fn generated_traces_are_strictly_sorted_and_in_window(
                seed in 0u64..10_000,
                // Deci-milliseconds: the vendored proptest samples
                // integer ranges only.
                gap_deci in 1u64..500,
                n in 1usize..200,
            ) {
                let gap = gap_deci as f64 / 10.0;
                let poisson = generate_arrivals(&ArrivalConfig {
                    num_requests: n,
                    mean_interarrival_ms: gap,
                    num_components: 3,
                    seed,
                }).expect("valid");
                let mmpp = generate_mmpp_arrivals(&MmppConfig {
                    num_requests: n,
                    phase_interarrival_ms: vec![gap / 4.0, gap * 4.0],
                    mean_dwell_ms: gap * 8.0,
                    num_components: 3,
                    seed,
                }).expect("valid");
                for trace in [&poisson, &mmpp] {
                    prop_assert_eq!(trace.len(), n);
                    let mut prev = 0.0f64;
                    for (i, r) in trace.iter().enumerate() {
                        prop_assert_eq!(r.id, i);
                        prop_assert!(r.arrival_ms.is_finite());
                        prop_assert!(
                            r.arrival_ms > prev || (i == 0 && r.arrival_ms > 0.0),
                            "instants must strictly increase: {} after {}",
                            r.arrival_ms,
                            prev
                        );
                        prop_assert!(r.component < 3);
                        prev = r.arrival_ms;
                    }
                    // Window sanity: n gaps of mean <= 4*gap cannot sum
                    // anywhere near this bound except astronomically
                    // rarely; catches runaway clocks from bad switching.
                    prop_assert!(prev < gap * 4.0 * (n as f64) * 64.0);
                }
            }
        }
    }
}
