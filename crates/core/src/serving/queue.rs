//! Bounded admission queue with load shedding.
//!
//! The serving front door: arrivals are offered to a fixed-capacity FIFO;
//! when it is full the request is *shed* (rejected immediately) rather
//! than queued unboundedly — the backpressure policy that keeps tail
//! latency bounded under overload.

use std::collections::VecDeque;

/// A FIFO that never grows past its capacity, counting rejections.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    shed: u64,
}

impl<T> BoundedQueue<T> {
    /// An empty queue admitting at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (callers validate via policy types).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
            shed: 0,
        }
    }

    /// Admits `item` if there is room; sheds (drops and counts) it
    /// otherwise. Returns whether the item was admitted.
    pub fn offer(&mut self, item: T) -> bool {
        if self.items.len() >= self.capacity {
            self.shed += 1;
            false
        } else {
            self.items.push_back(item);
            true
        }
    }

    /// Removes and returns the oldest admitted item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// The oldest admitted item, if any.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Number of items currently waiting.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// How many offers have been rejected so far.
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// The fixed admission limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity_then_sheds() {
        let mut q = BoundedQueue::new(3);
        assert!(q.offer(1));
        assert!(q.offer(2));
        assert!(q.offer(3));
        assert!(!q.offer(4));
        assert!(!q.offer(5));
        assert_eq!(q.len(), 3);
        assert_eq!(q.shed_count(), 2);
        // Draining frees room again.
        assert_eq!(q.pop(), Some(1));
        assert!(q.offer(6));
        assert_eq!(q.shed_count(), 2);
    }

    #[test]
    fn preserves_fifo_order() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.offer(i);
        }
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_a_bug() {
        let _ = BoundedQueue::<i32>::new(0);
    }
}
