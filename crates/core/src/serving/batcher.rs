//! Dynamic batching policy.
//!
//! Replays an arrival trace through the bounded admission queue and
//! decides *when* to coalesce waiting requests into device batches. Two
//! triggers, the standard max-batch / max-delay pair:
//!
//! - **size**: the instant the queue reaches `max_batch` waiters, a full
//!   batch dispatches;
//! - **delay**: a partial batch dispatches when its oldest waiter has
//!   been queued for `max_delay_ms` — the latency bound a size trigger
//!   alone cannot give under light load.
//!
//! The planner is pure (no device interaction): it maps an arrival trace
//! to a deterministic sequence of [`DispatchedBatch`]es plus a shed
//! count, which [`super::simulate`] then prices on the simulated GPU.

use super::arrivals::Request;
use super::queue::BoundedQueue;
use crate::{CoreError, Result};

/// When to close a forming batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPolicy {
    /// Dispatch as soon as this many requests are waiting.
    pub max_batch: usize,
    /// Dispatch a partial batch once its oldest request has waited this
    /// long, milliseconds.
    pub max_delay_ms: f64,
}

/// How much backpressure the admission queue applies.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuePolicy {
    /// Maximum number of requests waiting to be batched; arrivals beyond
    /// this are shed.
    pub capacity: usize,
}

/// One batch the planner committed: the requests it coalesced and the
/// instant it left the queue for the device.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchedBatch {
    /// Dispatch instant on the serving clock, milliseconds.
    pub dispatch_ms: f64,
    /// The coalesced requests, in admission order.
    pub requests: Vec<Request>,
}

/// The planner's full output for one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPlan {
    /// Every dispatched batch, in dispatch order.
    pub batches: Vec<DispatchedBatch>,
    /// Requests rejected by the admission queue.
    pub shed: u64,
}

fn validate(queue: &QueuePolicy, policy: &BatchPolicy) -> Result<()> {
    if policy.max_batch == 0 {
        return Err(CoreError::Serving {
            reason: "max_batch must be at least 1".into(),
        });
    }
    if !(policy.max_delay_ms.is_finite() && policy.max_delay_ms >= 0.0) {
        return Err(CoreError::Serving {
            reason: format!(
                "max_delay_ms must be non-negative and finite, got {}",
                policy.max_delay_ms
            ),
        });
    }
    if queue.capacity == 0 {
        return Err(CoreError::Serving {
            reason: "queue capacity must be at least 1".into(),
        });
    }
    Ok(())
}

/// Drains up to `max_batch` requests into a batch dispatched at `at_ms`.
fn dispatch(
    at_ms: f64,
    queue: &mut BoundedQueue<Request>,
    max_batch: usize,
    out: &mut Vec<DispatchedBatch>,
) {
    let take = queue.len().min(max_batch);
    let mut requests = Vec::with_capacity(take);
    for _ in 0..take {
        requests.push(queue.pop().expect("len checked"));
    }
    out.push(DispatchedBatch {
        dispatch_ms: at_ms,
        requests,
    });
}

/// Replays `arrivals` (must be sorted by `arrival_ms`) through the
/// admission queue and batching policy.
pub fn plan_batches(
    arrivals: &[Request],
    queue_policy: &QueuePolicy,
    policy: &BatchPolicy,
) -> Result<BatchPlan> {
    validate(queue_policy, policy)?;
    for pair in arrivals.windows(2) {
        if pair[0].arrival_ms > pair[1].arrival_ms {
            return Err(CoreError::Serving {
                reason: format!(
                    "arrival trace is not sorted: {} ms after {} ms",
                    pair[1].arrival_ms, pair[0].arrival_ms
                ),
            });
        }
    }

    let mut queue: BoundedQueue<Request> = BoundedQueue::new(queue_policy.capacity);
    let mut batches = Vec::new();
    for request in arrivals {
        // Fire every delay deadline that elapses before this arrival.
        while let Some(front) = queue.front() {
            let deadline = front.arrival_ms + policy.max_delay_ms;
            if deadline <= request.arrival_ms {
                dispatch(deadline, &mut queue, policy.max_batch, &mut batches);
            } else {
                break;
            }
        }
        if queue.offer(request.clone()) && queue.len() >= policy.max_batch {
            dispatch(
                request.arrival_ms,
                &mut queue,
                policy.max_batch,
                &mut batches,
            );
        }
    }
    // End of trace: the server does not know the trace ended, so each
    // leftover batch still waits out its oldest member's delay deadline.
    while !queue.is_empty() {
        let deadline = queue.front().expect("non-empty").arrival_ms + policy.max_delay_ms;
        dispatch(deadline, &mut queue, policy.max_batch, &mut batches);
    }

    Ok(BatchPlan {
        batches,
        shed: queue.shed_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, arrival_ms: f64) -> Request {
        Request {
            id,
            arrival_ms,
            component: 0,
        }
    }

    fn queue(capacity: usize) -> QueuePolicy {
        QueuePolicy { capacity }
    }

    fn policy(max_batch: usize, max_delay_ms: f64) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            max_delay_ms,
        }
    }

    #[test]
    fn size_trigger_dispatches_at_the_filling_arrival() {
        let arrivals: Vec<Request> = (0..6).map(|i| req(i, i as f64)).collect();
        let plan = plan_batches(&arrivals, &queue(16), &policy(3, 100.0)).expect("valid");
        assert_eq!(plan.shed, 0);
        assert_eq!(plan.batches.len(), 2);
        // Batch closes the instant its third member arrives.
        assert_eq!(plan.batches[0].dispatch_ms, 2.0);
        assert_eq!(plan.batches[1].dispatch_ms, 5.0);
        let ids: Vec<usize> = plan.batches[0].requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn delay_trigger_flushes_partial_batches() {
        // Two early requests, then a long gap: the delay timer must fire.
        let arrivals = vec![req(0, 0.0), req(1, 1.0), req(2, 50.0)];
        let plan = plan_batches(&arrivals, &queue(16), &policy(4, 5.0)).expect("valid");
        assert_eq!(plan.batches.len(), 2);
        assert_eq!(plan.batches[0].dispatch_ms, 5.0);
        assert_eq!(plan.batches[0].requests.len(), 2);
        // The straggler flushes at its own deadline after the trace ends.
        assert_eq!(plan.batches[1].dispatch_ms, 55.0);
        assert_eq!(plan.batches[1].requests.len(), 1);
    }

    #[test]
    fn overload_sheds_beyond_queue_capacity() {
        // Everything arrives at once; capacity 4 admits four, sheds six.
        let arrivals: Vec<Request> = (0..10).map(|i| req(i, 0.0)).collect();
        let plan = plan_batches(&arrivals, &queue(4), &policy(8, 10.0)).expect("valid");
        assert_eq!(plan.shed, 6);
        let served: usize = plan.batches.iter().map(|b| b.requests.len()).sum();
        assert_eq!(served, 4);
    }

    #[test]
    fn draining_between_bursts_readmits() {
        // Burst fills capacity, delay drains it, second burst is admitted.
        let mut arrivals: Vec<Request> = (0..4).map(|i| req(i, 0.0)).collect();
        arrivals.extend((4..8).map(|i| req(i, 20.0)));
        let plan = plan_batches(&arrivals, &queue(4), &policy(8, 5.0)).expect("valid");
        assert_eq!(plan.shed, 0);
        let served: usize = plan.batches.iter().map(|b| b.requests.len()).sum();
        assert_eq!(served, 8);
    }

    #[test]
    fn dispatch_times_never_decrease() {
        let arrivals: Vec<Request> = (0..50).map(|i| req(i, (i as f64 * 1.7) % 40.0)).collect();
        let mut sorted = arrivals;
        sorted.sort_by(|a, b| a.arrival_ms.partial_cmp(&b.arrival_ms).unwrap());
        let plan = plan_batches(&sorted, &queue(8), &policy(3, 4.0)).expect("valid");
        for pair in plan.batches.windows(2) {
            assert!(pair[0].dispatch_ms <= pair[1].dispatch_ms);
        }
    }

    #[test]
    fn zero_delay_flushes_every_request_alone() {
        // max_delay_ms == 0: a waiter's deadline is its own arrival
        // instant, so each request flushes before the next can join it —
        // even when arrivals share a timestamp.
        let arrivals = vec![req(0, 0.0), req(1, 0.0), req(2, 2.5)];
        let plan = plan_batches(&arrivals, &queue(16), &policy(8, 0.0)).expect("valid");
        assert_eq!(plan.shed, 0);
        assert_eq!(plan.batches.len(), 3, "one batch per request");
        for (batch, request) in plan.batches.iter().zip(&arrivals) {
            assert_eq!(batch.requests.len(), 1);
            assert_eq!(batch.requests[0].id, request.id);
            assert_eq!(batch.dispatch_ms, request.arrival_ms);
        }
    }

    #[test]
    fn capacity_below_max_batch_caps_batches_at_capacity() {
        // The queue can never hold max_batch waiters, so the size trigger
        // is unreachable: batches top out at capacity and the overflow is
        // shed, not silently wedged.
        let arrivals: Vec<Request> = (0..10).map(|i| req(i, 0.0)).collect();
        let plan = plan_batches(&arrivals, &queue(3), &policy(8, 4.0)).expect("valid");
        assert_eq!(plan.shed, 7);
        assert_eq!(plan.batches.len(), 1);
        assert_eq!(plan.batches[0].requests.len(), 3);
        assert_eq!(plan.batches[0].dispatch_ms, 4.0, "delay trigger flushes");
    }

    mod plan_proptest {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// For any trace and policy, dispatch instants are monotone
            /// and every admitted request lands in exactly one batch.
            #[test]
            fn dispatches_are_monotone_and_partition_admissions(
                // Deci-milliseconds: the vendored proptest only samples
                // integer ranges.
                arrival_deci in proptest::collection::vec(0u64..400, 0..40),
                max_batch in 1u64..6,
                capacity in 1u64..10,
                delay_deci in 0u64..80,
            ) {
                let mut instants = arrival_deci;
                instants.sort_unstable();
                let arrivals: Vec<Request> = instants
                    .iter()
                    .enumerate()
                    .map(|(id, &deci)| req(id, deci as f64 / 10.0))
                    .collect();
                let plan = plan_batches(
                    &arrivals,
                    &queue(capacity as usize),
                    &policy(max_batch as usize, delay_deci as f64 / 10.0),
                ).expect("valid policy");

                let mut last = f64::NEG_INFINITY;
                let mut seen = std::collections::HashSet::new();
                for batch in &plan.batches {
                    prop_assert!(!batch.requests.is_empty(), "empty batch");
                    prop_assert!(batch.requests.len() <= max_batch as usize);
                    prop_assert!(
                        batch.dispatch_ms >= last,
                        "dispatch went backwards: {} after {}",
                        batch.dispatch_ms,
                        last
                    );
                    last = batch.dispatch_ms;
                    for r in &batch.requests {
                        prop_assert!(
                            seen.insert(r.id),
                            "request {} dispatched twice",
                            r.id
                        );
                        prop_assert!(batch.dispatch_ms >= r.arrival_ms);
                    }
                }
                prop_assert_eq!(
                    seen.len() as u64 + plan.shed,
                    arrivals.len() as u64,
                    "admitted + shed must cover the trace"
                );
            }
        }
    }

    #[test]
    fn invalid_policies_are_rejected() {
        assert!(plan_batches(&[], &queue(4), &policy(0, 1.0)).is_err());
        assert!(plan_batches(&[], &queue(0), &policy(4, 1.0)).is_err());
        assert!(plan_batches(&[], &queue(4), &policy(4, -1.0)).is_err());
        assert!(plan_batches(&[], &queue(4), &policy(4, f64::NAN)).is_err());
        let unsorted = vec![req(0, 5.0), req(1, 1.0)];
        assert!(plan_batches(&unsorted, &queue(4), &policy(4, 1.0)).is_err());
    }
}
