//! Retry policy for faulted batches.
//!
//! When the simulated device kills a batch's op (see
//! [`gnnadvisor_gpu::fault`]), the server re-submits the whole batch: a
//! partial batch cannot be delivered, so the unit of retry is the unit of
//! dispatch. [`RetryPolicy`] bounds how often (total attempts) and paces
//! the re-submissions with exponential backoff plus deterministic jitter
//! — drawn from the policy's seed, not wall clock, so a faulted serving
//! run replays bit-for-bit.

use crate::{CoreError, Result};

/// How the server re-submits a batch whose device work faulted.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total submission attempts per batch, including the first; `1`
    /// means no retries.
    pub max_attempts: usize,
    /// Backoff before attempt `a + 1` is `backoff_base_ms * 2^(a-1)`,
    /// jittered up to +25 %; `0.0` retries immediately (the failed
    /// attempt's ops still finish first — streams are FIFO).
    pub backoff_base_ms: f64,
    /// Hard ceiling on any single backoff, milliseconds. The exponential
    /// step saturates here instead of growing without bound — in f64 the
    /// uncapped step overflows to `inf` near attempt 1075, and jitter
    /// arithmetic on `inf` is NaN-prone.
    pub max_backoff_ms: f64,
    /// Seed of the deterministic jitter; equal seeds replay equal
    /// backoff schedules.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 1,
            backoff_base_ms: 0.5,
            max_backoff_ms: 1_000.0,
            seed: 0,
        }
    }
}

/// SplitMix64 finalizer, mirroring the fault plan's draw so retry jitter
/// and fault verdicts come from the same well-mixed family.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// Validates the policy.
    pub fn validate(&self) -> Result<()> {
        if self.max_attempts == 0 {
            return Err(CoreError::Serving {
                reason: "retry max_attempts must be at least 1 (1 = no retries)".into(),
            });
        }
        if !(self.backoff_base_ms.is_finite() && self.backoff_base_ms >= 0.0) {
            return Err(CoreError::Serving {
                reason: format!(
                    "retry backoff_base_ms must be non-negative and finite, got {}",
                    self.backoff_base_ms
                ),
            });
        }
        if !(self.max_backoff_ms.is_finite() && self.max_backoff_ms >= 0.0) {
            return Err(CoreError::Serving {
                reason: format!(
                    "retry max_backoff_ms must be non-negative and finite, got {}",
                    self.max_backoff_ms
                ),
            });
        }
        Ok(())
    }

    /// Backoff to wait after attempt `failed_attempt` (1-based) of batch
    /// `batch` fails, before the next attempt: exponential in the attempt
    /// number with deterministic jitter in `[0, 25 %)` of the step, the
    /// whole wait capped at `max_backoff_ms`. The exponent is computed in
    /// f64 so huge attempt counts saturate at the cap instead of
    /// overflowing an integer shift or producing `inf`/NaN.
    pub fn backoff_ms(&self, batch: usize, failed_attempt: usize) -> f64 {
        debug_assert!(failed_attempt >= 1);
        // `powi` on an exponent this large can return `inf`; `min` with a
        // finite cap yields the cap, never NaN, because `inf.min(c) == c`.
        let exponent = (failed_attempt - 1).min(i32::MAX as usize) as i32;
        let step = (self.backoff_base_ms * 2f64.powi(exponent)).min(self.max_backoff_ms);
        let word = splitmix64(self.seed ^ splitmix64((batch as u64) << 8 | failed_attempt as u64));
        let jitter = (word >> 11) as f64 / (1u64 << 53) as f64;
        (step * (1.0 + 0.25 * jitter)).min(self.max_backoff_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_never_retries() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 1);
        p.validate().expect("default is valid");
    }

    #[test]
    fn invalid_policies_are_rejected() {
        assert!(RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        }
        .validate()
        .is_err());
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            assert!(RetryPolicy {
                backoff_base_ms: bad,
                ..RetryPolicy::default()
            }
            .validate()
            .is_err());
            assert!(RetryPolicy {
                max_backoff_ms: bad,
                ..RetryPolicy::default()
            }
            .validate()
            .is_err());
        }
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        let p = RetryPolicy {
            max_attempts: 4,
            backoff_base_ms: 2.0,
            seed: 5,
            ..RetryPolicy::default()
        };
        for attempt in 1..=4 {
            let step = 2.0 * (1u64 << (attempt - 1)) as f64;
            let b = p.backoff_ms(0, attempt);
            assert!(
                (step..step * 1.25).contains(&b),
                "attempt {attempt}: {b} outside [{step}, {})",
                step * 1.25
            );
        }
    }

    #[test]
    fn huge_attempt_counts_saturate_at_the_cap() {
        // Regression: the uncapped exponential overflows f64 to `inf`
        // around attempt 1075 (and an integer shift much earlier); the
        // jitter multiply on `inf` then risks NaN. Every attempt count
        // must now return a finite wait bounded by `max_backoff_ms`.
        let p = RetryPolicy {
            max_attempts: usize::MAX,
            backoff_base_ms: 0.5,
            max_backoff_ms: 250.0,
            seed: 11,
        };
        for attempt in [64usize, 65, 1024, 1075, 4096, usize::MAX] {
            let b = p.backoff_ms(3, attempt);
            assert!(b.is_finite(), "attempt {attempt}: backoff {b} not finite");
            assert!(
                b <= 250.0,
                "attempt {attempt}: backoff {b} exceeds the 250 ms cap"
            );
            assert!(b > 0.0, "attempt {attempt}: backoff must stay positive");
        }
        // The cap binds exactly: two saturated attempts wait the same.
        assert_eq!(p.backoff_ms(3, 64), 250.0);
        assert_eq!(p.backoff_ms(3, 4096), 250.0);
    }

    #[test]
    fn capped_backoff_leaves_small_attempts_untouched() {
        let capped = RetryPolicy {
            max_attempts: 4,
            backoff_base_ms: 2.0,
            max_backoff_ms: 1_000.0,
            seed: 5,
        };
        let roomy = RetryPolicy {
            max_backoff_ms: f64::MAX,
            ..capped.clone()
        };
        for attempt in 1..=4 {
            assert_eq!(
                capped.backoff_ms(0, attempt),
                roomy.backoff_ms(0, attempt),
                "a non-binding cap must not change attempt {attempt}"
            );
        }
    }

    #[test]
    fn jitter_is_deterministic_and_seed_dependent() {
        let p = RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 1.0,
            seed: 40,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_ms(7, 2), p.backoff_ms(7, 2));
        let other = RetryPolicy {
            seed: 41,
            ..p.clone()
        };
        assert_ne!(p.backoff_ms(7, 2), other.backoff_ms(7, 2));
        // Different batches jitter differently (decorrelated retries).
        assert_ne!(p.backoff_ms(7, 2), p.backoff_ms(8, 2));
    }

    #[test]
    fn zero_base_backs_off_zero() {
        let p = RetryPolicy {
            max_attempts: 2,
            backoff_base_ms: 0.0,
            seed: 1,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_ms(0, 1), 0.0);
    }
}
