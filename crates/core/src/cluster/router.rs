//! Deterministic batch routing across replicated engines.
//!
//! The router decides which replica (and which stream on it) each
//! dispatched batch lands on. It never inspects device state — it keeps
//! its own *estimate* of every stream's busy-until frontier, updated as
//! batches commit, so routing is a pure fold over the dispatch sequence
//! and replays bit-for-bit. Three policies:
//!
//! - [`RouterPolicy::RoundRobin`] — rotate over the active replicas;
//!   oblivious, the baseline.
//! - [`RouterPolicy::LeastLoaded`] — pick the replica with the fewest
//!   batches still estimated in flight; classic queue-depth balancing.
//! - [`RouterPolicy::CostAware`] — pick the replica with the least
//!   estimated backlog *cycles*. Batch costs vary by an order of
//!   magnitude with batch size and graph shape, so counting batches
//!   (LeastLoaded) misroutes when one tenant's batches are fat; weighing
//!   them by priced cycles is the GNNAdvisor move — decide from the
//!   workload's analytically known cost, not a blind heuristic.
//!
//! All ties break on the lowest replica/stream index.

/// How the router picks a replica for each batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Rotate over the active replicas.
    RoundRobin,
    /// Fewest batches estimated still in flight.
    LeastLoaded,
    /// Least estimated backlog in device cycles.
    CostAware,
}

impl RouterPolicy {
    /// Parses a CLI spelling (`round-robin`, `least-loaded`, `cost-aware`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "round-robin" => Some(Self::RoundRobin),
            "least-loaded" => Some(Self::LeastLoaded),
            "cost-aware" => Some(Self::CostAware),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn label(&self) -> &'static str {
        match self {
            Self::RoundRobin => "round-robin",
            Self::LeastLoaded => "least-loaded",
            Self::CostAware => "cost-aware",
        }
    }
}

/// Where one batch was placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Replica index.
    pub replica: usize,
    /// Stream index on that replica.
    pub stream: usize,
}

/// Stateful router over `replicas × streams` estimated frontiers.
#[derive(Debug)]
pub struct Router {
    policy: RouterPolicy,
    rr_next: usize,
    /// `[replica][stream]` — estimated cycle at which the stream drains.
    frontiers: Vec<Vec<u64>>,
    /// `[replica]` — estimated end cycles of committed batches, pruned
    /// lazily against the routing instant.
    in_flight: Vec<Vec<u64>>,
}

impl Router {
    /// A router over `replicas` engines with `streams` streams each.
    pub fn new(policy: RouterPolicy, replicas: usize, streams: usize) -> Self {
        assert!(
            replicas > 0 && streams > 0,
            "router needs replicas and streams"
        );
        Self {
            policy,
            rr_next: 0,
            frontiers: vec![vec![0; streams]; replicas],
            in_flight: vec![Vec::new(); replicas],
        }
    }

    /// Estimated backlog cycles of `replica` beyond `now_cycles`.
    fn backlog(&self, replica: usize, now_cycles: u64) -> u64 {
        self.frontiers[replica]
            .iter()
            .map(|&f| f.saturating_sub(now_cycles))
            .sum()
    }

    /// Batches estimated still in flight on `replica` at `now_cycles`.
    fn load(&mut self, replica: usize, now_cycles: u64) -> usize {
        self.in_flight[replica].retain(|&end| end > now_cycles);
        self.in_flight[replica].len()
    }

    /// Picks a replica among `active` (must be non-empty) and its least
    ///-busy stream for a batch released at `now_cycles`.
    pub fn route(&mut self, active: &[usize], now_cycles: u64) -> Placement {
        debug_assert!(!active.is_empty());
        let replica = match self.policy {
            RouterPolicy::RoundRobin => {
                let r = active[self.rr_next % active.len()];
                self.rr_next += 1;
                r
            }
            RouterPolicy::LeastLoaded => active
                .iter()
                .copied()
                .min_by_key(|&r| (self.load(r, now_cycles), r))
                .expect("non-empty"),
            RouterPolicy::CostAware => active
                .iter()
                .copied()
                .min_by_key(|&r| (self.backlog(r, now_cycles), r))
                .expect("non-empty"),
        };
        let stream = self.frontiers[replica]
            .iter()
            .enumerate()
            .min_by_key(|&(s, &f)| (f, s))
            .map(|(s, _)| s)
            .expect("streams > 0");
        Placement { replica, stream }
    }

    /// Commits a routed batch: the placed stream's frontier advances by
    /// `cost_cycles` from the later of its current frontier and the
    /// batch's release. Returns the estimated end cycle.
    pub fn commit(&mut self, p: Placement, release_cycles: u64, cost_cycles: u64) -> u64 {
        let start = self.frontiers[p.replica][p.stream].max(release_cycles);
        let end = start + cost_cycles;
        self.frontiers[p.replica][p.stream] = end;
        self.in_flight[p.replica].push(end);
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_parse_and_label_round_trip() {
        for p in [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastLoaded,
            RouterPolicy::CostAware,
        ] {
            assert_eq!(RouterPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(RouterPolicy::parse("random"), None);
    }

    #[test]
    fn round_robin_rotates_over_the_active_set() {
        let mut r = Router::new(RouterPolicy::RoundRobin, 3, 1);
        let picks: Vec<usize> = (0..6).map(|_| r.route(&[0, 1, 2], 0).replica).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        // Shrinking the active set keeps rotating over what remains.
        let picks: Vec<usize> = (0..4).map(|_| r.route(&[0, 2], 0).replica).collect();
        assert_eq!(picks.iter().filter(|&&p| p == 1).count(), 0);
    }

    #[test]
    fn least_loaded_prefers_the_emptier_replica() {
        let mut r = Router::new(RouterPolicy::LeastLoaded, 2, 1);
        // Three batches land on replica 0 (cost 100 each, all in flight).
        for _ in 0..3 {
            let p = Placement {
                replica: 0,
                stream: 0,
            };
            r.commit(p, 0, 100);
        }
        assert_eq!(r.route(&[0, 1], 0).replica, 1);
        // Once replica 0's batches drain, the tie breaks back to 0.
        assert_eq!(r.route(&[0, 1], 1_000).replica, 0);
    }

    #[test]
    fn cost_aware_weighs_backlog_not_batch_count() {
        let mut r = Router::new(RouterPolicy::CostAware, 2, 1);
        // One fat batch on replica 0, three thin ones on replica 1:
        // count says replica 0, cycles say replica 1.
        r.commit(
            Placement {
                replica: 0,
                stream: 0,
            },
            0,
            10_000,
        );
        for _ in 0..3 {
            let p = r.route(&[1], 0);
            r.commit(p, 0, 100);
        }
        assert_eq!(r.route(&[0, 1], 0).replica, 1, "300 cycles < 10000");
        let mut by_count = Router::new(RouterPolicy::LeastLoaded, 2, 1);
        by_count.commit(
            Placement {
                replica: 0,
                stream: 0,
            },
            0,
            10_000,
        );
        for _ in 0..3 {
            by_count.commit(
                Placement {
                    replica: 1,
                    stream: 0,
                },
                0,
                100,
            );
        }
        assert_eq!(by_count.route(&[0, 1], 0).replica, 0, "1 batch < 3");
    }

    #[test]
    fn streams_fill_least_busy_first_and_commits_respect_release() {
        let mut r = Router::new(RouterPolicy::RoundRobin, 1, 2);
        let a = r.route(&[0], 0);
        assert_eq!(r.commit(a, 0, 50), 50);
        let b = r.route(&[0], 0);
        assert_eq!(b.stream, 1, "second batch takes the idle stream");
        assert_eq!(r.commit(b, 0, 50), 50);
        // A release beyond the frontier starts the batch at its release.
        let c = r.route(&[0], 200);
        assert_eq!(r.commit(c, 200, 50), 250);
    }

    #[test]
    fn routing_is_deterministic() {
        let run = || {
            let mut r = Router::new(RouterPolicy::CostAware, 3, 2);
            let mut placements = Vec::new();
            for i in 0..50u64 {
                let p = r.route(&[0, 1, 2], i * 10);
                r.commit(p, i * 10, 35 + (i % 7) * 11);
                placements.push(p);
            }
            placements
        };
        assert_eq!(run(), run());
    }
}
