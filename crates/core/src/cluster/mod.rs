//! Cluster-level serving: replicated engines behind one router.
//!
//! [`crate::serving`] serves one simulated GPU. This module scales that
//! pipeline out the way real inference fleets do — N replicated engines
//! behind a deterministic router — while keeping the workspace's
//! bit-reproducibility contract:
//!
//! - **tenants** ([`tenant`]): traffic classes with their own deadlines
//!   and weighted-fair admission at the shared bounded queue, so a heavy
//!   tenant's burst cannot starve a light tenant's SLO;
//! - **routing** ([`router`]): each tenant-pure batch lands on a replica
//!   chosen round-robin, by least in-flight batches, or by least
//!   estimated backlog cycles — the router folds over its own cost
//!   estimates, never device state, so placement is deterministic;
//! - **autoscaling** ([`autoscaler`]): a seeded controller steps the
//!   active replica count on queue-depth and p99 signals with streak
//!   hysteresis; scale-down drains (committed batches finish);
//! - **failover**: a batch whose attempt faults retries *elsewhere*
//!   (the faulted replica is excluded from the next attempt's routing),
//!   and a device reset kills its replica for the rest of the run.
//!
//! [`simulate_cluster`] ties it together and aggregates a
//! [`ClusterReport`] with per-tenant goodput and SLO attainment under the
//! cluster-wide conservation invariant: summed across replicas,
//! `completed + shed + failed + deadline_missed == arrivals`. The report
//! renders byte-identically across runs and `GNNADVISOR_SIM_THREADS`
//! settings — pricing is worker-count-invariant and every policy above is
//! a seeded pure fold.

pub mod autoscaler;
pub mod router;
pub mod tenant;

pub use autoscaler::{Autoscaler, AutoscalerConfig, ScaleEvent};
pub use router::{Placement, Router, RouterPolicy};
pub use tenant::{
    assign_tenants, plan_cluster_batches, validate_tenants, ClusterBatch, ClusterPlan, TenantSpec,
};

use gnnadvisor_gpu::fault::FaultKind;
use gnnadvisor_gpu::stream::OpHandle;
use gnnadvisor_gpu::{Engine, StreamSim, Workload};

use crate::serving::percentile;
use crate::serving::{BatchExecutor, BatchPolicy, DeviceWork, QueuePolicy, Request, RetryPolicy};
use crate::{CoreError, Result};

/// Shape of the cluster: replica/stream counts plus the shared policies.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Replicas active at start (the autoscaler may move this within its
    /// bounds); at least 1.
    pub replicas: usize,
    /// Concurrent device streams per replica.
    pub streams: usize,
    /// Shared admission queue (weighted-fair across tenants).
    pub queue: QueuePolicy,
    /// Dynamic batching policy (shared triggers, tenant-pure batches).
    pub batch: BatchPolicy,
    /// Re-submission policy for faulted batches; retries route away from
    /// the replica that faulted.
    pub retry: RetryPolicy,
    /// Replica selection policy.
    pub router: RouterPolicy,
    /// Optional replica autoscaler.
    pub autoscaler: Option<AutoscalerConfig>,
}

/// Per-tenant slice of the cluster report.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRow {
    /// Tenant display name.
    pub name: String,
    /// Requests the trace assigned to this tenant.
    pub arrivals: usize,
    /// Requests completed within the tenant's deadline.
    pub completed: usize,
    /// Requests shed (or evicted) at admission.
    pub shed: u64,
    /// Requests whose batch exhausted its retry budget.
    pub failed: usize,
    /// Requests served later than the tenant's deadline.
    pub deadline_missed: usize,
    /// Median in-deadline latency, ms.
    pub p50_ms: f64,
    /// 95th-percentile in-deadline latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile in-deadline latency, ms.
    pub p99_ms: f64,
    /// Mean in-deadline latency, ms.
    pub mean_ms: f64,
    /// In-deadline completions per second of schedule span.
    pub goodput_rps: f64,
    /// `completed / arrivals` — the fraction of offered traffic served
    /// within SLO (1 when the tenant offered nothing).
    pub slo_attainment: f64,
}

/// Aggregate result of one cluster serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Per-tenant rows, in roster order.
    pub tenants: Vec<TenantRow>,
    /// Total in-deadline completions.
    pub completed: usize,
    /// Total requests shed at admission.
    pub shed: u64,
    /// Total requests failed on retry exhaustion.
    pub failed: usize,
    /// Total requests served past their deadline.
    pub deadline_missed: usize,
    /// Batch re-submissions caused by faults.
    pub retries: u64,
    /// Tenant-pure batches the planner dispatched.
    pub batches: usize,
    /// Batch submissions (including retries) each replica slot received.
    pub per_replica_batches: Vec<usize>,
    /// Duration-weighted mean achieved kernel occupancy per replica slot,
    /// in `[0, 1]` (`0` for a slot that ran no kernels).
    pub per_replica_occupancy: Vec<f64>,
    /// Replica slots killed by a device reset during the run.
    pub dead_replicas: Vec<usize>,
    /// Autoscaler steps, in order.
    pub scale_events: Vec<ScaleEvent>,
    /// Most replicas simultaneously active.
    pub peak_active: usize,
    /// Served requests (completed + missed) per second of schedule span.
    pub throughput_rps: f64,
    /// In-deadline completions per second of schedule span.
    pub goodput_rps: f64,
    /// End of the last device op across all replicas, ms.
    pub makespan_ms: f64,
}

impl ClusterReport {
    /// Renders the report as a deterministic fixed-precision table (the
    /// CLI prints this; CI diffs it byte-for-byte across runs and worker
    /// counts).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("cluster-serving report\n");
        out.push_str(&format!(
            "  replicas             {} slots, peak active {}\n",
            self.per_replica_batches.len(),
            self.peak_active
        ));
        out.push_str(&format!("  batches dispatched   {}\n", self.batches));
        let loads: Vec<String> = self
            .per_replica_batches
            .iter()
            .map(|n| n.to_string())
            .collect();
        out.push_str(&format!("  replica submissions  {}\n", loads.join("/")));
        let occ: Vec<String> = self
            .per_replica_occupancy
            .iter()
            .map(|o| format!("{o:.4}"))
            .collect();
        out.push_str(&format!("  replica occupancy    {}\n", occ.join("/")));
        out.push_str(&format!("  batch retries        {}\n", self.retries));
        if self.dead_replicas.is_empty() {
            out.push_str("  dead replicas        none\n");
        } else {
            let dead: Vec<String> = self.dead_replicas.iter().map(|r| r.to_string()).collect();
            out.push_str(&format!("  dead replicas        {}\n", dead.join(",")));
        }
        if self.scale_events.is_empty() {
            out.push_str("  scale events         none\n");
        } else {
            let steps: Vec<String> = self
                .scale_events
                .iter()
                .map(|e| format!("{}->{}@{:.3}ms", e.from, e.to, e.at_ms))
                .collect();
            out.push_str(&format!("  scale events         {}\n", steps.join(" ")));
        }
        out.push_str(&format!(
            "  totals               completed {} shed {} failed {} missed {}\n",
            self.completed, self.shed, self.failed, self.deadline_missed
        ));
        out.push_str(&format!(
            "  throughput           {:.3} req/s\n",
            self.throughput_rps
        ));
        out.push_str(&format!(
            "  goodput              {:.3} req/s\n",
            self.goodput_rps
        ));
        out.push_str(&format!(
            "  makespan             {:.3} ms\n",
            self.makespan_ms
        ));
        for t in &self.tenants {
            out.push_str(&format!(
                "  tenant {:<12} arrivals {} completed {} shed {} failed {} missed {} \
                 p50 {:.3} p95 {:.3} p99 {:.3} goodput {:.3} slo {:.4}\n",
                t.name,
                t.arrivals,
                t.completed,
                t.shed,
                t.failed,
                t.deadline_missed,
                t.p50_ms,
                t.p95_ms,
                t.p99_ms,
                t.goodput_rps,
                t.slo_attainment
            ));
        }
        out
    }
}

/// How one batch's cluster-wide retry chain ended.
enum Outcome {
    /// Some attempt ran fault-free on `replica`; `tail` is its last op
    /// (`None`: the batch planned no device ops and completes at its
    /// dispatch instant).
    Done {
        replica: usize,
        tail: Option<OpHandle>,
    },
    /// Every attempt faulted; the batch's requests failed.
    Exhausted,
}

fn validate(engines: &[Engine], cfg: &ClusterConfig) -> Result<usize> {
    if cfg.replicas == 0 {
        return Err(CoreError::Serving {
            reason: "the cluster needs at least one replica".into(),
        });
    }
    if cfg.streams == 0 {
        return Err(CoreError::Serving {
            reason: "streams per replica must be at least 1".into(),
        });
    }
    cfg.retry.validate()?;
    let slots = match &cfg.autoscaler {
        Some(a) => {
            a.validate()?;
            a.max_replicas
        }
        None => cfg.replicas,
    };
    let slots = slots.max(cfg.replicas);
    if engines.len() < slots {
        return Err(CoreError::Serving {
            reason: format!(
                "the cluster can activate up to {} replicas but only {} engines were supplied",
                slots,
                engines.len()
            ),
        });
    }
    Ok(slots)
}

/// Runs the full cluster pipeline: weighted-fair tenant batching, routed
/// placement across the replica fleet, optional autoscaling, retry with
/// failover, and per-tenant SLO accounting.
///
/// `engines` supplies one engine per replica *slot* — at least
/// `max(cfg.replicas, autoscaler.max_replicas)` of them; slots beyond the
/// active count idle until the autoscaler activates them. Replica failure
/// is modeled by an engine whose fault plan carries a `device_reset_ms`:
/// the reset kills the in-flight attempt, the batch retries on another
/// replica, and the dead slot leaves the active set for good.
pub fn simulate_cluster(
    engines: &[Engine],
    arrivals: &[Request],
    tenant_of: &[usize],
    tenants: &[TenantSpec],
    cfg: &ClusterConfig,
    exec: &mut dyn BatchExecutor,
) -> Result<ClusterReport> {
    let slots = validate(engines, cfg)?;
    let engines = &engines[..slots];
    let plan = plan_cluster_batches(arrivals, tenant_of, tenants, &cfg.queue, &cfg.batch)?;

    // The router and the latency estimator keep time in replica 0's
    // cycles (every CLI/bench path builds identical specs; with mixed
    // specs the estimates stay deterministic, merely coarser).
    let clock = engines[0].spec().clone();
    let mut sims: Vec<StreamSim> = engines.iter().map(StreamSim::new).collect();
    let streams: Vec<Vec<_>> = sims
        .iter_mut()
        .map(|sim| (0..cfg.streams).map(|_| sim.stream()).collect())
        .collect();
    let mut router = Router::new(cfg.router, slots, cfg.streams);
    let mut scaler = match &cfg.autoscaler {
        Some(a) => Some(Autoscaler::new(a.clone(), cfg.replicas)?),
        None => None,
    };

    let mut active: Vec<usize> = (0..cfg.replicas.min(slots)).collect();
    let mut dead: Vec<bool> = vec![false; slots];
    let mut peak_active = active.len();
    let mut per_replica_batches = vec![0usize; slots];
    let mut est_latencies: Vec<f64> = Vec::new(); // kept sorted
    let mut outcomes: Vec<Outcome> = Vec::with_capacity(plan.batches.len());
    let mut retries = 0u64;

    for (i, cb) in plan.batches.iter().enumerate() {
        // Control plane first: the autoscaler sees the queue depth at
        // this dispatch and the running p99 estimate.
        if let Some(scaler) = scaler.as_mut() {
            let p99_est = percentile(&est_latencies, 99.0);
            let target = scaler.observe(cb.batch.dispatch_ms, cb.depth_at_dispatch, p99_est);
            while active.len() > target {
                // Drain the highest slot: committed batches still run.
                active.pop();
            }
            while active.len() < target {
                match (0..slots).find(|s| !dead[*s] && !active.contains(s)) {
                    Some(s) => {
                        active.push(s);
                        active.sort_unstable();
                    }
                    None => break, // every spare slot is dead
                }
            }
            peak_active = peak_active.max(active.len());
        }

        let work = exec.plan(&cb.batch)?;
        let mut release_ms = cb.batch.dispatch_ms;
        let mut exclude: Option<usize> = None;
        let mut outcome = Outcome::Exhausted;
        for attempt in 1..=cfg.retry.max_attempts {
            // Retry elsewhere: skip the replica that just faulted unless
            // it is the only active one.
            let avail: Vec<usize> = match exclude {
                Some(x) if active.len() > 1 => active.iter().copied().filter(|&r| r != x).collect(),
                _ => active.clone(),
            };
            let placement = router.route(&avail, clock.ms_to_cycles(release_ms));
            let replica = placement.replica;
            per_replica_batches[replica] += 1;
            let spec = engines[replica].spec();
            let release = spec.ms_to_cycles(release_ms);

            let mut tail = None;
            let mut attempt_ms = 0.0f64;
            let mut fault: Option<FaultKind> = None;
            for op in &work.ops {
                let workload = match op {
                    DeviceWork::Kernel(k) => Workload::Kernel(&**k),
                    DeviceWork::Gemm { m, n, k } => Workload::Gemm {
                        m: *m,
                        n: *n,
                        k: *k,
                    },
                    DeviceWork::Transfer { bytes } => Workload::Transfer { bytes: *bytes },
                };
                let enq = sims[replica].try_enqueue_at(
                    streams[replica][placement.stream],
                    workload,
                    release,
                )?;
                attempt_ms += enq.metrics.time_ms();
                if let Some(kind) = enq.fault {
                    // The faulted op burns its time; the attempt's
                    // remaining ops are never issued.
                    fault = Some(kind);
                    break;
                }
                tail = Some(enq.handle);
            }
            let est_end = router.commit(
                placement,
                clock.ms_to_cycles(release_ms),
                clock.ms_to_cycles(attempt_ms),
            );
            match fault {
                None => {
                    // Feed the latency estimator (sorted insert) so the
                    // autoscaler's p99 signal tracks estimated service.
                    let est_end_ms = clock.cycles_to_ms(est_end);
                    for request in &cb.batch.requests {
                        let est = (est_end_ms - request.arrival_ms).max(0.0);
                        let at = est_latencies.partition_point(|&x| x < est);
                        est_latencies.insert(at, est);
                    }
                    outcome = Outcome::Done { replica, tail };
                    break;
                }
                Some(kind) => {
                    if kind == FaultKind::DeviceReset && !dead[replica] {
                        // The replica is gone for the rest of the run —
                        // unless it is the last one standing, where a
                        // degraded replica beats an empty cluster.
                        dead[replica] = true;
                        if active.len() > 1 {
                            active.retain(|&r| r != replica);
                        }
                    }
                    if attempt == cfg.retry.max_attempts {
                        break;
                    }
                    retries += 1;
                    release_ms = spec.cycles_to_ms(release + spec.ms_to_cycles(attempt_ms))
                        + cfg.retry.backoff_ms(i, attempt);
                    exclude = Some(replica);
                }
            }
        }
        outcomes.push(outcome);
    }

    let reports: Vec<_> = sims
        .into_iter()
        .map(|sim| sim.run())
        .collect::<gnnadvisor_gpu::Result<_>>()?;

    // Classification per tenant.
    let n = tenants.len();
    let mut t_arrivals = vec![0usize; n];
    for &t in tenant_of {
        t_arrivals[t] += 1;
    }
    let mut t_completed_lat: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut t_failed = vec![0usize; n];
    let mut t_missed = vec![0usize; n];
    let mut span_ms = reports.iter().map(|r| r.makespan_ms).fold(0.0, f64::max);
    for (cb, outcome) in plan.batches.iter().zip(outcomes) {
        match outcome {
            Outcome::Exhausted => t_failed[cb.tenant] += cb.batch.requests.len(),
            Outcome::Done { replica, tail } => {
                let end_ms = match tail {
                    Some(handle) => {
                        let end = reports[replica]
                            .op_end(handle)
                            .expect("committed op has a span");
                        engines[replica].spec().cycles_to_ms(end)
                    }
                    None => cb.batch.dispatch_ms,
                };
                span_ms = span_ms.max(end_ms);
                let deadline = tenants[cb.tenant].deadline_ms;
                for request in &cb.batch.requests {
                    let latency = (end_ms - request.arrival_ms).max(0.0);
                    match deadline {
                        Some(d) if latency > d => t_missed[cb.tenant] += 1,
                        _ => t_completed_lat[cb.tenant].push(latency),
                    }
                }
            }
        }
    }

    let rate = |count: usize| {
        if span_ms > 0.0 {
            count as f64 * 1000.0 / span_ms
        } else {
            0.0
        }
    };
    let mut rows = Vec::with_capacity(n);
    for (t, spec) in tenants.iter().enumerate() {
        let mut lat = std::mem::take(&mut t_completed_lat[t]);
        lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let completed = lat.len();
        let mean_ms = if completed == 0 {
            0.0
        } else {
            lat.iter().sum::<f64>() / completed as f64
        };
        rows.push(TenantRow {
            name: spec.name.clone(),
            arrivals: t_arrivals[t],
            completed,
            shed: plan.shed_per_tenant[t],
            failed: t_failed[t],
            deadline_missed: t_missed[t],
            p50_ms: percentile(&lat, 50.0),
            p95_ms: percentile(&lat, 95.0),
            p99_ms: percentile(&lat, 99.0),
            mean_ms,
            goodput_rps: rate(completed),
            slo_attainment: if t_arrivals[t] == 0 {
                1.0
            } else {
                completed as f64 / t_arrivals[t] as f64
            },
        });
    }

    let completed: usize = rows.iter().map(|r| r.completed).sum();
    let shed: u64 = rows.iter().map(|r| r.shed).sum();
    let failed: usize = rows.iter().map(|r| r.failed).sum();
    let deadline_missed: usize = rows.iter().map(|r| r.deadline_missed).sum();
    Ok(ClusterReport {
        tenants: rows,
        completed,
        shed,
        failed,
        deadline_missed,
        retries,
        batches: plan.batches.len(),
        per_replica_batches,
        per_replica_occupancy: reports.iter().map(|r| r.mean_kernel_occupancy()).collect(),
        dead_replicas: (0..slots).filter(|&r| dead[r]).collect(),
        scale_events: scaler.map(Autoscaler::into_events).unwrap_or_default(),
        peak_active,
        throughput_rps: rate(completed + deadline_missed),
        goodput_rps: rate(completed),
        makespan_ms: reports.iter().map(|r| r.makespan_ms).fold(0.0, f64::max),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::{generate_arrivals, generate_mmpp_arrivals, ArrivalConfig, MmppConfig};
    use crate::serving::{BatchWork, DispatchedBatch};
    use gnnadvisor_gpu::{FaultConfig, FaultPlan, GpuSpec};
    use std::sync::Arc;

    /// A model-free executor: per batch, copies around a GEMM whose rows
    /// scale with batch size — enough device time to be device-limited.
    struct GemmExecutor {
        rows_per_request: usize,
        dim: usize,
    }

    impl BatchExecutor for GemmExecutor {
        fn plan(&mut self, batch: &DispatchedBatch) -> crate::Result<BatchWork> {
            let rows = self.rows_per_request * batch.requests.len();
            let bytes = (rows * self.dim * 4) as u64;
            Ok(BatchWork {
                ops: vec![
                    DeviceWork::Transfer { bytes },
                    DeviceWork::Gemm {
                        m: rows,
                        n: self.dim,
                        k: self.dim,
                    },
                    DeviceWork::Transfer { bytes },
                ],
            })
        }
    }

    fn exec() -> GemmExecutor {
        // Heavy enough that the device, not the arrival process, is the
        // bottleneck — replica count must move the schedule span.
        GemmExecutor {
            rows_per_request: 16_384,
            dim: 128,
        }
    }

    fn tenants2() -> Vec<TenantSpec> {
        vec![
            TenantSpec {
                name: "batch".into(),
                weight: 3,
                deadline_ms: None,
            },
            TenantSpec {
                name: "online".into(),
                weight: 1,
                deadline_ms: Some(40.0),
            },
        ]
    }

    fn trace(n: usize) -> (Vec<Request>, Vec<usize>) {
        let arrivals = generate_arrivals(&ArrivalConfig {
            num_requests: n,
            mean_interarrival_ms: 0.05,
            num_components: 4,
            seed: 7,
        })
        .expect("valid");
        let tenant_of = assign_tenants(&arrivals, &tenants2(), 7).expect("valid");
        (arrivals, tenant_of)
    }

    fn engines(slots: usize, fault_rate: f64, seed: u64, sim_threads: usize) -> Vec<Engine> {
        (0..slots)
            .map(|r| {
                let mut b = Engine::builder(GpuSpec::quadro_p6000()).sim_threads(sim_threads);
                if fault_rate > 0.0 {
                    b = b.fault_plan(Arc::new(
                        FaultPlan::new(FaultConfig::uniform(
                            fault_rate,
                            seed.wrapping_add(r as u64),
                        ))
                        .expect("valid rate"),
                    ));
                }
                b.build().expect("valid engine")
            })
            .collect()
    }

    fn config(replicas: usize) -> ClusterConfig {
        ClusterConfig {
            replicas,
            streams: 2,
            queue: QueuePolicy { capacity: 32 },
            batch: BatchPolicy {
                max_batch: 4,
                max_delay_ms: 1.0,
            },
            retry: RetryPolicy::default(),
            router: RouterPolicy::CostAware,
            autoscaler: None,
        }
    }

    fn conservation(report: &ClusterReport, arrivals: usize) {
        assert_eq!(
            report.completed as u64
                + report.shed
                + report.failed as u64
                + report.deadline_missed as u64,
            arrivals as u64,
            "cluster-wide conservation: {report:?}"
        );
        for row in &report.tenants {
            assert_eq!(
                row.completed as u64 + row.shed + row.failed as u64 + row.deadline_missed as u64,
                row.arrivals as u64,
                "per-tenant conservation: {row:?}"
            );
        }
    }

    #[test]
    fn reports_are_identical_across_runs_and_worker_counts() {
        let (arrivals, tenant_of) = trace(48);
        let render_at = |sim_threads: usize| {
            let engines = engines(2, 0.15, 23, sim_threads);
            simulate_cluster(
                &engines,
                &arrivals,
                &tenant_of,
                &tenants2(),
                &config(2),
                &mut exec(),
            )
            .expect("runs")
            .render()
        };
        let serial = render_at(1);
        assert_eq!(render_at(1), serial, "same seed, same report");
        assert_eq!(render_at(4), serial, "worker count must not leak");
    }

    #[test]
    fn two_replicas_beat_one_on_a_device_limited_trace() {
        let (arrivals, tenant_of) = trace(64);
        let run = |replicas: usize| {
            let engines = engines(replicas, 0.0, 0, 1);
            simulate_cluster(
                &engines,
                &arrivals,
                &tenant_of,
                &tenants2(),
                &config(replicas),
                &mut exec(),
            )
            .expect("runs")
        };
        let one = run(1);
        let two = run(2);
        conservation(&one, 64);
        conservation(&two, 64);
        assert!(two.per_replica_batches.iter().filter(|&&n| n > 0).count() == 2);
        assert!(
            two.goodput_rps >= one.goodput_rps * 1.5,
            "2 replicas must lift goodput >= 1.5x: {} vs {}",
            two.goodput_rps,
            one.goodput_rps
        );
    }

    #[test]
    fn every_router_policy_balances_and_conserves() {
        let (arrivals, tenant_of) = trace(48);
        for policy in [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastLoaded,
            RouterPolicy::CostAware,
        ] {
            let mut cfg = config(3);
            cfg.router = policy;
            let engines = engines(3, 0.0, 0, 1);
            let report = simulate_cluster(
                &engines,
                &arrivals,
                &tenant_of,
                &tenants2(),
                &cfg,
                &mut exec(),
            )
            .expect("runs");
            conservation(&report, 48);
            assert_eq!(
                report
                    .per_replica_batches
                    .iter()
                    .filter(|&&n| n > 0)
                    .count(),
                3,
                "{policy:?} must use every replica"
            );
        }
    }

    #[test]
    fn autoscaler_rides_an_mmpp_burst_up_and_down() {
        // Bursty arrivals: heavy phases pile the queue up, lulls drain
        // it, so the controller must both grow and shrink the fleet.
        let arrivals = generate_mmpp_arrivals(&MmppConfig {
            num_requests: 500,
            phase_interarrival_ms: vec![0.05, 5.0],
            mean_dwell_ms: 15.0,
            num_components: 4,
            seed: 3,
        })
        .expect("valid");
        let tenant_of = assign_tenants(&arrivals, &tenants2(), 3).expect("valid");
        let mut cfg = config(1);
        // Let depth build past the high watermark during heavy phases.
        cfg.batch.max_batch = 8;
        cfg.queue.capacity = 64;
        cfg.autoscaler = Some(AutoscalerConfig {
            min_replicas: 1,
            max_replicas: 3,
            interval_ms: 4.0,
            high_queue_depth: 6,
            low_queue_depth: 1,
            p99_high_ms: None,
            consecutive: 2,
            seed: 3,
        });
        let engines = engines(3, 0.0, 0, 1);
        let report = simulate_cluster(
            &engines,
            &arrivals,
            &tenant_of,
            &tenants2(),
            &cfg,
            &mut exec(),
        )
        .expect("runs");
        conservation(&report, 500);
        assert!(report.peak_active > 1, "the burst must scale the fleet up");
        assert!(
            report.scale_events.iter().any(|e| e.to > e.from),
            "missing scale-up events: {:?}",
            report.scale_events
        );
        assert!(
            report.scale_events.iter().any(|e| e.to < e.from),
            "lulls must scale back down: {:?}",
            report.scale_events
        );
    }

    #[test]
    fn device_reset_fails_over_to_the_surviving_replica() {
        let (arrivals, tenant_of) = trace(48);
        // Replica 0 resets early; replica 1 is clean. With a retry
        // budget, every batch must still complete — on replica 1.
        let reset = Engine::builder(GpuSpec::quadro_p6000())
            .fault_plan(Arc::new(
                FaultPlan::new(FaultConfig {
                    device_reset_ms: Some(0.5),
                    seed: 1,
                    ..FaultConfig::default()
                })
                .expect("valid"),
            ))
            .build()
            .expect("valid");
        let clean = Engine::new(GpuSpec::quadro_p6000());
        let mut cfg = config(2);
        cfg.retry = RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 0.25,
            seed: 1,
            ..RetryPolicy::default()
        };
        let report = simulate_cluster(
            &[reset, clean],
            &arrivals,
            &tenant_of,
            &tenants2(),
            &cfg,
            &mut exec(),
        )
        .expect("runs");
        conservation(&report, 48);
        assert_eq!(report.dead_replicas, vec![0], "the reset kills replica 0");
        assert!(report.retries > 0, "the killed attempt must retry");
        assert_eq!(report.failed, 0, "failover absorbs the reset");
        assert!(
            report.per_replica_batches[1] > report.per_replica_batches[0],
            "traffic must drain to the survivor: {:?}",
            report.per_replica_batches
        );
    }

    #[test]
    fn invalid_cluster_configs_are_rejected() {
        let (arrivals, tenant_of) = trace(8);
        let engines1 = engines(1, 0.0, 0, 1);
        // Zero replicas / zero streams.
        for breakage in [
            |c: &mut ClusterConfig| c.replicas = 0,
            |c: &mut ClusterConfig| c.streams = 0,
            |c: &mut ClusterConfig| c.retry.max_attempts = 0,
        ] {
            let mut bad = config(1);
            breakage(&mut bad);
            assert!(simulate_cluster(
                &engines1,
                &arrivals,
                &tenant_of,
                &tenants2(),
                &bad,
                &mut exec(),
            )
            .is_err());
        }
        // Fewer engines than replica slots.
        assert!(simulate_cluster(
            &engines1,
            &arrivals,
            &tenant_of,
            &tenants2(),
            &config(2),
            &mut exec(),
        )
        .is_err());
        // Autoscaler wanting more slots than supplied.
        let mut bad = config(1);
        bad.autoscaler = Some(AutoscalerConfig {
            min_replicas: 1,
            max_replicas: 4,
            interval_ms: 5.0,
            high_queue_depth: 6,
            low_queue_depth: 1,
            p99_high_ms: None,
            consecutive: 1,
            seed: 0,
        });
        assert!(simulate_cluster(
            &engines1,
            &arrivals,
            &tenant_of,
            &tenants2(),
            &bad,
            &mut exec(),
        )
        .is_err());
    }

    #[test]
    fn empty_trace_yields_an_empty_report() {
        let engines = engines(2, 0.0, 0, 1);
        let report = simulate_cluster(&engines, &[], &[], &tenants2(), &config(2), &mut exec())
            .expect("runs");
        assert_eq!(report.batches, 0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.goodput_rps, 0.0);
        assert_eq!(
            report.tenants[0].slo_attainment, 1.0,
            "no traffic, no misses"
        );
    }

    mod cluster_proptest {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Under any fault rate, replica count, router policy, and
            /// retry budget, every request lands in exactly one bucket
            /// per tenant and cluster-wide, and the report bytes do not
            /// depend on the simulation worker count.
            #[test]
            fn cluster_conservation_holds_under_chaos(
                rate_permille in 0u64..600,
                replicas in 1u64..4,
                max_attempts in 1u64..4,
                policy_idx in 0u64..3,
                seed in 0u64..500,
            ) {
                let rate = rate_permille as f64 / 1000.0;
                let replicas = replicas as usize;
                let arrivals = generate_arrivals(&ArrivalConfig {
                    num_requests: 24,
                    mean_interarrival_ms: 0.4,
                    num_components: 3,
                    seed,
                }).expect("valid");
                let tenants = tenants2();
                let tenant_of = assign_tenants(&arrivals, &tenants, seed).expect("valid");
                let mut cfg = config(replicas);
                cfg.router = [
                    RouterPolicy::RoundRobin,
                    RouterPolicy::LeastLoaded,
                    RouterPolicy::CostAware,
                ][policy_idx as usize];
                cfg.retry = RetryPolicy {
                    max_attempts: max_attempts as usize,
                    backoff_base_ms: 0.25,
                    seed,
                    ..RetryPolicy::default()
                };
                let run = |sim_threads: usize| {
                    let engines = engines(replicas, rate, seed, sim_threads);
                    simulate_cluster(
                        &engines,
                        &arrivals,
                        &tenant_of,
                        &tenants,
                        &cfg,
                        &mut exec(),
                    ).expect("runs")
                };
                let report = run(1);
                prop_assert_eq!(
                    report.completed as u64
                        + report.shed
                        + report.failed as u64
                        + report.deadline_missed as u64,
                    24,
                    "conservation: {:?}",
                    &report
                );
                for row in &report.tenants {
                    prop_assert_eq!(
                        row.completed as u64
                            + row.shed
                            + row.failed as u64
                            + row.deadline_missed as u64,
                        row.arrivals as u64,
                        "tenant conservation: {:?}",
                        row
                    );
                }
                prop_assert_eq!(run(4).render(), report.render());
            }
        }
    }
}
