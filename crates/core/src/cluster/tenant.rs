//! Tenant traffic classes and weighted-fair admission.
//!
//! A shared cluster serves several *tenants* — independent traffic
//! classes with their own latency deadlines and a weight that says how
//! much of the shared admission queue each one is entitled to under
//! contention. The planner here generalizes the single-stream batcher
//! ([`crate::serving::batcher`]) to that setting:
//!
//! - the admission queue's capacity is shared, but each tenant owns a
//!   *guaranteed share* proportional to its weight (never below one
//!   slot);
//! - a tenant may borrow idle capacity beyond its share, but when the
//!   queue is full an arrival from an *under-share* tenant evicts the
//!   newest waiter of the most over-share tenant — so a heavy tenant's
//!   burst cannot starve a light tenant's trickle;
//! - batches are tenant-pure (one tenant per batch — tenants may want
//!   different models, priorities, or billing) and close under the shared
//!   max-batch / max-delay triggers.
//!
//! Everything is pure policy: trace in, per-tenant dispatch schedule and
//! shed counts out. Ties break on the lowest tenant index, so the plan is
//! deterministic for any input.

use crate::serving::batcher::{BatchPolicy, DispatchedBatch, QueuePolicy};
use crate::serving::Request;
use crate::{CoreError, Result};

use std::collections::VecDeque;

/// One traffic class sharing the cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Display name (report rows, CLI specs); must be non-empty.
    pub name: String,
    /// Relative share of the admission queue under contention; must be at
    /// least 1.
    pub weight: u32,
    /// Per-request latency SLO: a request completing later than this
    /// after arrival counts as `deadline_missed`. `None` disables the
    /// check for this tenant.
    pub deadline_ms: Option<f64>,
}

/// Validates a tenant roster: at least one tenant, non-empty names,
/// positive weights, sane deadlines.
pub fn validate_tenants(tenants: &[TenantSpec]) -> Result<()> {
    if tenants.is_empty() {
        return Err(CoreError::Serving {
            reason: "the cluster needs at least one tenant".into(),
        });
    }
    for (i, t) in tenants.iter().enumerate() {
        if t.name.is_empty() {
            return Err(CoreError::Serving {
                reason: format!("tenant {i} has an empty name"),
            });
        }
        if t.weight == 0 {
            return Err(CoreError::Serving {
                reason: format!("tenant {} weight must be at least 1", t.name),
            });
        }
        if let Some(d) = t.deadline_ms {
            if !(d.is_finite() && d > 0.0) {
                return Err(CoreError::Serving {
                    reason: format!(
                        "tenant {} deadline_ms must be positive and finite, got {d}",
                        t.name
                    ),
                });
            }
        }
    }
    Ok(())
}

/// SplitMix64 finalizer (the workspace's standard seeded draw).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Assigns each request a tenant, drawn per-request in proportion to the
/// tenant weights — a pure function of `(request id, seed)`, so the
/// assignment replays bit-for-bit and is independent of trace slicing.
pub fn assign_tenants(
    arrivals: &[Request],
    tenants: &[TenantSpec],
    seed: u64,
) -> Result<Vec<usize>> {
    validate_tenants(tenants)?;
    let total: u64 = tenants.iter().map(|t| u64::from(t.weight)).sum();
    Ok(arrivals
        .iter()
        .map(|r| {
            let mut pick = splitmix64(seed ^ splitmix64(r.id as u64)) % total;
            for (i, t) in tenants.iter().enumerate() {
                let w = u64::from(t.weight);
                if pick < w {
                    return i;
                }
                pick -= w;
            }
            tenants.len() - 1
        })
        .collect())
}

/// One tenant-pure batch the cluster planner committed.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterBatch {
    /// Index into the tenant roster.
    pub tenant: usize,
    /// Total requests waiting across all tenants just before this batch
    /// drained — the autoscaler's queue-depth signal.
    pub depth_at_dispatch: usize,
    /// The coalesced requests and their dispatch instant.
    pub batch: DispatchedBatch,
}

/// The cluster planner's full output for one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPlan {
    /// Every dispatched batch, in dispatch order.
    pub batches: Vec<ClusterBatch>,
    /// Requests rejected (or evicted) at admission, per tenant.
    pub shed_per_tenant: Vec<u64>,
}

/// Weighted-fair admission state over one shared capacity.
struct Admission {
    queues: Vec<VecDeque<Request>>,
    shares: Vec<usize>,
    shed: Vec<u64>,
    capacity: usize,
    waiting: usize,
}

impl Admission {
    fn new(tenants: &[TenantSpec], capacity: usize) -> Self {
        let total: u64 = tenants.iter().map(|t| u64::from(t.weight)).sum();
        // Guaranteed share: proportional floor, never below one slot.
        let shares = tenants
            .iter()
            .map(|t| (((capacity as u64) * u64::from(t.weight)) / total).max(1) as usize)
            .collect();
        Self {
            queues: tenants.iter().map(|_| VecDeque::new()).collect(),
            shares,
            shed: vec![0; tenants.len()],
            capacity,
            waiting: 0,
        }
    }

    /// Offers one arrival of tenant `t`: admit into slack, or reclaim a
    /// guaranteed slot by evicting the newest waiter of the most
    /// over-share tenant, or shed. Returns whether the request waits.
    fn offer(&mut self, t: usize, request: Request) -> bool {
        if self.waiting < self.capacity {
            self.queues[t].push_back(request);
            self.waiting += 1;
            return true;
        }
        if self.queues[t].len() < self.shares[t] {
            // The queue is full of borrowers while `t` is under its
            // guarantee: evict the newest request of the tenant furthest
            // over its own share (ties: lowest index). Some over-share
            // tenant must exist — the shares sum to at most the capacity.
            let victim = (0..self.queues.len())
                .filter(|&v| self.queues[v].len() > self.shares[v])
                .max_by_key(|&v| self.queues[v].len() - self.shares[v]);
            if let Some(v) = victim {
                self.queues[v].pop_back();
                self.shed[v] += 1;
                self.queues[t].push_back(request);
                return true;
            }
        }
        self.shed[t] += 1;
        false
    }

    /// The tenant whose oldest waiter has the earliest delay deadline
    /// (ties: lowest index), if anyone is waiting.
    fn earliest_deadline(&self, max_delay_ms: f64) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (t, q) in self.queues.iter().enumerate() {
            if let Some(front) = q.front() {
                let deadline = front.arrival_ms + max_delay_ms;
                if best.is_none_or(|(_, d)| deadline < d) {
                    best = Some((t, deadline));
                }
            }
        }
        best
    }

    /// Drains up to `max_batch` of tenant `t`'s waiters into a batch
    /// dispatched at `at_ms`.
    fn dispatch(&mut self, t: usize, at_ms: f64, max_batch: usize, out: &mut Vec<ClusterBatch>) {
        let depth_at_dispatch = self.waiting;
        let take = self.queues[t].len().min(max_batch);
        let mut requests = Vec::with_capacity(take);
        for _ in 0..take {
            requests.push(self.queues[t].pop_front().expect("len checked"));
            self.waiting -= 1;
        }
        out.push(ClusterBatch {
            tenant: t,
            depth_at_dispatch,
            batch: DispatchedBatch {
                dispatch_ms: at_ms,
                requests,
            },
        });
    }
}

/// Replays `arrivals` (sorted, with `tenant_of[i]` naming request `i`'s
/// tenant) through weighted-fair admission and per-tenant batching.
pub fn plan_cluster_batches(
    arrivals: &[Request],
    tenant_of: &[usize],
    tenants: &[TenantSpec],
    queue: &QueuePolicy,
    policy: &BatchPolicy,
) -> Result<ClusterPlan> {
    validate_tenants(tenants)?;
    if tenant_of.len() != arrivals.len() {
        return Err(CoreError::Serving {
            reason: format!(
                "tenant assignment covers {} requests but the trace has {}",
                tenant_of.len(),
                arrivals.len()
            ),
        });
    }
    if let Some(&bad) = tenant_of.iter().find(|&&t| t >= tenants.len()) {
        return Err(CoreError::Serving {
            reason: format!(
                "tenant index {bad} out of range ({} tenants)",
                tenants.len()
            ),
        });
    }
    if queue.capacity < tenants.len() {
        return Err(CoreError::Serving {
            reason: format!(
                "queue capacity {} cannot guarantee one slot to each of {} tenants",
                queue.capacity,
                tenants.len()
            ),
        });
    }
    // Reuse the single-tenant validation for the batch/queue policies.
    crate::serving::plan_batches(&[], queue, policy)?;
    for pair in arrivals.windows(2) {
        if pair[0].arrival_ms > pair[1].arrival_ms {
            return Err(CoreError::Serving {
                reason: format!(
                    "arrival trace is not sorted: {} ms after {} ms",
                    pair[1].arrival_ms, pair[0].arrival_ms
                ),
            });
        }
    }

    let mut adm = Admission::new(tenants, queue.capacity);
    let mut batches = Vec::new();
    for (request, &t) in arrivals.iter().zip(tenant_of) {
        // Fire every delay deadline that elapses before this arrival, in
        // deadline order (ties: lowest tenant index).
        while let Some((tenant, deadline)) = adm.earliest_deadline(policy.max_delay_ms) {
            if deadline <= request.arrival_ms {
                adm.dispatch(tenant, deadline, policy.max_batch, &mut batches);
            } else {
                break;
            }
        }
        if adm.offer(t, request.clone()) && adm.queues[t].len() >= policy.max_batch {
            adm.dispatch(t, request.arrival_ms, policy.max_batch, &mut batches);
        }
    }
    // End of trace: leftovers still wait out their delay deadlines.
    while let Some((tenant, deadline)) = adm.earliest_deadline(policy.max_delay_ms) {
        adm.dispatch(tenant, deadline, policy.max_batch, &mut batches);
    }

    Ok(ClusterPlan {
        batches,
        shed_per_tenant: adm.shed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, arrival_ms: f64) -> Request {
        Request {
            id,
            arrival_ms,
            component: 0,
        }
    }

    fn tenants2() -> Vec<TenantSpec> {
        vec![
            TenantSpec {
                name: "heavy".into(),
                weight: 3,
                deadline_ms: None,
            },
            TenantSpec {
                name: "light".into(),
                weight: 1,
                deadline_ms: Some(5.0),
            },
        ]
    }

    fn queue(capacity: usize) -> QueuePolicy {
        QueuePolicy { capacity }
    }

    fn policy(max_batch: usize, max_delay_ms: f64) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            max_delay_ms,
        }
    }

    #[test]
    fn invalid_rosters_and_assignments_are_rejected() {
        assert!(validate_tenants(&[]).is_err());
        let mut bad = tenants2();
        bad[0].weight = 0;
        assert!(validate_tenants(&bad).is_err());
        let mut bad = tenants2();
        bad[1].name.clear();
        assert!(validate_tenants(&bad).is_err());
        let mut bad = tenants2();
        bad[1].deadline_ms = Some(f64::NAN);
        assert!(validate_tenants(&bad).is_err());

        let arrivals = vec![req(0, 0.0)];
        // Assignment length mismatch and out-of-range tenants.
        assert!(
            plan_cluster_batches(&arrivals, &[], &tenants2(), &queue(4), &policy(2, 1.0)).is_err()
        );
        assert!(
            plan_cluster_batches(&arrivals, &[7], &tenants2(), &queue(4), &policy(2, 1.0)).is_err()
        );
        // Capacity below the tenant count cannot guarantee shares.
        assert!(
            plan_cluster_batches(&arrivals, &[0], &tenants2(), &queue(1), &policy(2, 1.0)).is_err()
        );
    }

    #[test]
    fn weighted_assignment_tracks_weights_and_replays() {
        let arrivals: Vec<Request> = (0..4000).map(|i| req(i, i as f64 * 0.1)).collect();
        let a = assign_tenants(&arrivals, &tenants2(), 11).expect("valid");
        let b = assign_tenants(&arrivals, &tenants2(), 11).expect("valid");
        assert_eq!(a, b, "assignment must replay");
        let heavy = a.iter().filter(|&&t| t == 0).count() as f64;
        let share = heavy / 4000.0;
        assert!(
            (share - 0.75).abs() < 0.03,
            "weight 3:1 must split ~75/25, got {share}"
        );
        assert_ne!(
            a,
            assign_tenants(&arrivals, &tenants2(), 12).expect("valid"),
            "seed must matter"
        );
    }

    #[test]
    fn batches_are_tenant_pure_and_partition_admissions() {
        let arrivals: Vec<Request> = (0..40).map(|i| req(i, i as f64 * 0.3)).collect();
        let tenant_of = assign_tenants(&arrivals, &tenants2(), 5).expect("valid");
        let plan = plan_cluster_batches(
            &arrivals,
            &tenant_of,
            &tenants2(),
            &queue(16),
            &policy(4, 2.0),
        )
        .expect("valid");
        let mut seen = std::collections::HashSet::new();
        let mut last = f64::NEG_INFINITY;
        for cb in &plan.batches {
            assert!(!cb.batch.requests.is_empty());
            assert!(cb.batch.dispatch_ms >= last, "dispatch order");
            last = cb.batch.dispatch_ms;
            for r in &cb.batch.requests {
                assert!(seen.insert(r.id), "request dispatched twice");
                assert_eq!(tenant_of[r.id], cb.tenant, "batches must be tenant-pure");
                assert!(cb.batch.dispatch_ms >= r.arrival_ms);
            }
        }
        let shed: u64 = plan.shed_per_tenant.iter().sum();
        assert_eq!(seen.len() as u64 + shed, 40, "admitted + shed covers trace");
    }

    #[test]
    fn full_queue_evicts_the_over_share_tenant_not_the_light_one() {
        // Tenant 0 (weight 3) floods 12 simultaneous arrivals into a
        // capacity-8 queue (its share: 6 slots, light tenant's share: 2).
        // The flood fills all 8; the light tenant's two arrivals must
        // then reclaim their guaranteed slots by evicting the flood's
        // newest waiters instead of being shed.
        let mut arrivals: Vec<Request> = (0..12).map(|i| req(i, 0.0)).collect();
        arrivals.push(req(12, 0.1));
        arrivals.push(req(13, 0.2));
        let mut tenant_of = vec![0usize; 12];
        tenant_of.extend([1, 1]);
        let plan = plan_cluster_batches(
            &arrivals,
            &tenant_of,
            &tenants2(),
            &queue(8),
            &policy(16, 10.0),
        )
        .expect("valid");
        let light_served: usize = plan
            .batches
            .iter()
            .filter(|cb| cb.tenant == 1)
            .map(|cb| cb.batch.requests.len())
            .sum();
        assert_eq!(light_served, 2, "the light tenant must not be starved");
        assert_eq!(plan.shed_per_tenant[1], 0);
        // The flood paid: 4 shed at the full queue plus 2 evictions.
        assert_eq!(plan.shed_per_tenant[0], 6);
        let heavy_served: usize = plan
            .batches
            .iter()
            .filter(|cb| cb.tenant == 0)
            .map(|cb| cb.batch.requests.len())
            .sum();
        assert_eq!(heavy_served, 6);
    }

    #[test]
    fn per_tenant_delay_deadlines_fire_in_order() {
        // One early request per tenant, then silence: each flushes at its
        // own deadline, earliest first.
        let arrivals = vec![req(0, 0.0), req(1, 1.0)];
        let tenant_of = vec![1, 0];
        let plan = plan_cluster_batches(
            &arrivals,
            &tenant_of,
            &tenants2(),
            &queue(8),
            &policy(4, 3.0),
        )
        .expect("valid");
        assert_eq!(plan.batches.len(), 2);
        assert_eq!(plan.batches[0].tenant, 1);
        assert_eq!(plan.batches[0].batch.dispatch_ms, 3.0);
        assert_eq!(plan.batches[1].tenant, 0);
        assert_eq!(plan.batches[1].batch.dispatch_ms, 4.0);
    }

    #[test]
    fn depth_signal_counts_all_waiting_tenants() {
        // Both tenants have waiters when the first batch drains; the
        // recorded depth must include the other tenant's queue.
        let arrivals = vec![req(0, 0.0), req(1, 0.0), req(2, 0.0), req(3, 0.0)];
        let tenant_of = vec![0, 0, 0, 1];
        let plan = plan_cluster_batches(
            &arrivals,
            &tenant_of,
            &tenants2(),
            &queue(8),
            &policy(3, 5.0),
        )
        .expect("valid");
        assert_eq!(plan.batches[0].tenant, 0, "size trigger fires first");
        assert_eq!(plan.batches[0].depth_at_dispatch, 3);
    }
}
