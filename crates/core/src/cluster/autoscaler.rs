//! Seeded replica autoscaler with hysteresis.
//!
//! Watches two load signals on a fixed control cadence — the shared
//! admission queue's depth and the running p99 latency estimate — and
//! steps the active replica count by one when a signal has been past its
//! watermark for `consecutive` control intervals in a row. The streak
//! requirement is the hysteresis: a single bursty interval (one MMPP
//! phase flip) does not flap the fleet, and scaling resets the streak so
//! consecutive steps need fresh evidence.
//!
//! Determinism: the controller is a pure fold over `(instant, depth,
//! p99)` observations. The only randomness is a seeded jitter on the
//! *first* control instant (up to 10 % of the interval) — the standard
//! trick that de-synchronizes many controllers sharing a cadence — drawn
//! once from the config seed, so a `(config, seed)` pair replays
//! bit-for-bit.

use crate::{CoreError, Result};

/// Control policy of the autoscaler.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalerConfig {
    /// Never scale below this many replicas; at least 1.
    pub min_replicas: usize,
    /// Never scale above this many replicas.
    pub max_replicas: usize,
    /// Control cadence, milliseconds.
    pub interval_ms: f64,
    /// Scale up when the queue depth reaches this watermark.
    pub high_queue_depth: usize,
    /// Scale down when the queue depth is at or below this watermark
    /// (and the p99 signal, if configured, is also calm).
    pub low_queue_depth: usize,
    /// Optional latency watermark: a p99 estimate above this also votes
    /// to scale up, and blocks scale-down while hot.
    pub p99_high_ms: Option<f64>,
    /// Consecutive control intervals a signal must persist before one
    /// scaling step fires; at least 1. This is the hysteresis.
    pub consecutive: usize,
    /// Seed of the first-instant jitter.
    pub seed: u64,
}

impl AutoscalerConfig {
    /// Validates the config.
    pub fn validate(&self) -> Result<()> {
        if self.min_replicas == 0 {
            return Err(CoreError::Serving {
                reason: "autoscaler min_replicas must be at least 1".into(),
            });
        }
        if self.max_replicas < self.min_replicas {
            return Err(CoreError::Serving {
                reason: format!(
                    "autoscaler max_replicas {} below min_replicas {}",
                    self.max_replicas, self.min_replicas
                ),
            });
        }
        if !(self.interval_ms.is_finite() && self.interval_ms > 0.0) {
            return Err(CoreError::Serving {
                reason: format!(
                    "autoscaler interval_ms must be positive and finite, got {}",
                    self.interval_ms
                ),
            });
        }
        if self.low_queue_depth >= self.high_queue_depth {
            return Err(CoreError::Serving {
                reason: format!(
                    "autoscaler low watermark {} must sit below the high watermark {}",
                    self.low_queue_depth, self.high_queue_depth
                ),
            });
        }
        if let Some(p) = self.p99_high_ms {
            if !(p.is_finite() && p > 0.0) {
                return Err(CoreError::Serving {
                    reason: format!("autoscaler p99_high_ms must be positive and finite, got {p}"),
                });
            }
        }
        if self.consecutive == 0 {
            return Err(CoreError::Serving {
                reason: "autoscaler consecutive must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// One replica-count change the controller committed.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleEvent {
    /// Control instant the step fired at, milliseconds.
    pub at_ms: f64,
    /// Active replicas before the step.
    pub from: usize,
    /// Active replicas after the step.
    pub to: usize,
}

/// SplitMix64 finalizer (the workspace's standard seeded draw).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The running controller.
#[derive(Debug)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    active: usize,
    next_control_ms: f64,
    high_streak: usize,
    low_streak: usize,
    events: Vec<ScaleEvent>,
}

impl Autoscaler {
    /// A controller starting at `initial` active replicas (clamped into
    /// `[min, max]`).
    pub fn new(cfg: AutoscalerConfig, initial: usize) -> Result<Self> {
        cfg.validate()?;
        let active = initial.clamp(cfg.min_replicas, cfg.max_replicas);
        // Jitter the first control instant into [interval, 1.1*interval).
        let u = (splitmix64(cfg.seed) >> 11) as f64 / (1u64 << 53) as f64;
        let next_control_ms = cfg.interval_ms * (1.0 + 0.1 * u);
        Ok(Self {
            cfg,
            active,
            next_control_ms,
            high_streak: 0,
            low_streak: 0,
            events: Vec::new(),
        })
    }

    /// Currently active replicas.
    pub fn active(&self) -> usize {
        self.active
    }

    /// The committed scaling steps so far.
    pub fn events(&self) -> &[ScaleEvent] {
        &self.events
    }

    /// Consumes the controller, returning its event log.
    pub fn into_events(self) -> Vec<ScaleEvent> {
        self.events
    }

    /// Feeds the controller the load observed at `now_ms`: the shared
    /// queue depth and the running p99 latency estimate. Every control
    /// instant that elapsed up to `now_ms` evaluates against this
    /// observation (the freshest one available to it). Returns the active
    /// replica count after any steps.
    pub fn observe(&mut self, now_ms: f64, queue_depth: usize, p99_est_ms: f64) -> usize {
        while self.next_control_ms <= now_ms {
            let at = self.next_control_ms;
            self.next_control_ms += self.cfg.interval_ms;
            let latency_hot = self.cfg.p99_high_ms.is_some_and(|t| p99_est_ms > t);
            let latency_calm = self.cfg.p99_high_ms.is_none_or(|t| p99_est_ms <= t);
            if queue_depth >= self.cfg.high_queue_depth || latency_hot {
                self.high_streak += 1;
                self.low_streak = 0;
            } else if queue_depth <= self.cfg.low_queue_depth && latency_calm {
                self.low_streak += 1;
                self.high_streak = 0;
            } else {
                self.high_streak = 0;
                self.low_streak = 0;
            }
            if self.high_streak >= self.cfg.consecutive && self.active < self.cfg.max_replicas {
                self.events.push(ScaleEvent {
                    at_ms: at,
                    from: self.active,
                    to: self.active + 1,
                });
                self.active += 1;
                self.high_streak = 0;
            } else if self.low_streak >= self.cfg.consecutive && self.active > self.cfg.min_replicas
            {
                self.events.push(ScaleEvent {
                    at_ms: at,
                    from: self.active,
                    to: self.active - 1,
                });
                self.active -= 1;
                self.low_streak = 0;
            }
        }
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutoscalerConfig {
        AutoscalerConfig {
            min_replicas: 1,
            max_replicas: 4,
            interval_ms: 10.0,
            high_queue_depth: 8,
            low_queue_depth: 1,
            p99_high_ms: None,
            consecutive: 2,
            seed: 7,
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for breakage in [
            |c: &mut AutoscalerConfig| c.min_replicas = 0,
            |c: &mut AutoscalerConfig| c.max_replicas = 0,
            |c: &mut AutoscalerConfig| c.interval_ms = 0.0,
            |c: &mut AutoscalerConfig| c.interval_ms = f64::NAN,
            |c: &mut AutoscalerConfig| c.low_queue_depth = 8,
            |c: &mut AutoscalerConfig| c.p99_high_ms = Some(-1.0),
            |c: &mut AutoscalerConfig| c.consecutive = 0,
        ] {
            let mut bad = cfg();
            breakage(&mut bad);
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn hysteresis_requires_a_streak_before_scaling_up() {
        let mut a = Autoscaler::new(cfg(), 1).expect("valid");
        // One hot interval is not enough (consecutive = 2).
        assert_eq!(a.observe(12.0, 20, 0.0), 1);
        // A calm interval resets the streak.
        assert_eq!(a.observe(22.0, 0, 0.0), 1);
        assert_eq!(a.observe(32.0, 20, 0.0), 1);
        // The second consecutive hot interval fires the step.
        assert_eq!(a.observe(42.0, 20, 0.0), 2);
        assert_eq!(a.events().len(), 1);
        assert_eq!(a.events()[0].from, 1);
        assert_eq!(a.events()[0].to, 2);
    }

    #[test]
    fn scales_down_when_calm_and_respects_bounds() {
        let mut a = Autoscaler::new(cfg(), 3).expect("valid");
        // Long calm: down to min, never below.
        let n = a.observe(500.0, 0, 0.0);
        assert_eq!(n, 1, "drains to min_replicas");
        // Long storm: up to max, never above.
        let n = a.observe(1_000.0, 50, 0.0);
        assert_eq!(n, 4, "climbs to max_replicas");
        for e in a.events() {
            assert!(e.to >= 1 && e.to <= 4);
            assert_eq!(e.to as i64 - e.from as i64, (e.to > e.from) as i64 * 2 - 1);
        }
    }

    #[test]
    fn p99_signal_scales_up_and_blocks_scale_down() {
        let mut cfg = cfg();
        cfg.p99_high_ms = Some(5.0);
        let mut a = Autoscaler::new(cfg.clone(), 1).expect("valid");
        // Queue is empty but latency is hot: scale up.
        assert_eq!(a.observe(40.0, 0, 9.0), 2);
        // Queue calm + latency still hot: the fleet keeps growing and
        // never steps down.
        let before = a.active();
        assert!(a.observe(80.0, 0, 9.0) >= before);
        assert!(a.events().iter().all(|e| e.to > e.from));
        // Latency cools: scale-down resumes.
        assert_eq!(a.observe(160.0, 0, 1.0), 1);
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let first_step = |seed: u64| {
            let mut c = cfg();
            c.seed = seed;
            c.consecutive = 1;
            let mut a = Autoscaler::new(c, 1).expect("valid");
            a.observe(100.0, 50, 0.0);
            a.into_events()[0].at_ms
        };
        // Deterministic per seed, inside [interval, 1.1*interval).
        assert_eq!(first_step(1), first_step(1));
        for seed in 0..20 {
            let at = first_step(seed);
            assert!((10.0..11.0).contains(&at), "first instant {at} out of band");
        }
        assert_ne!(first_step(1), first_step(2), "seed must move the jitter");
    }

    #[test]
    fn controller_is_a_pure_fold_over_observations() {
        let run = || {
            let mut a = Autoscaler::new(cfg(), 2).expect("valid");
            let depths = [0, 2, 30, 30, 30, 1, 0, 0, 40, 40];
            for (i, &d) in depths.iter().enumerate() {
                a.observe((i as f64 + 1.0) * 11.0, d, d as f64 * 0.3);
            }
            a.into_events()
        };
        assert_eq!(run(), run());
    }
}
