//! Baseline framework execution strategies.
//!
//! Each baseline the paper compares against is an execution *strategy* over
//! the same simulated device: given a graph and an aggregation
//! dimensionality, it launches that framework's characteristic kernel
//! sequence and returns combined metrics. The GNNAdvisor strategy itself
//! lives in [`crate::runtime::Advisor`]; [`aggregate_with`] dispatches over
//! all of them so the bench harness can sweep frameworks uniformly.

use gnnadvisor_gpu::{Engine, RunMetrics};
use gnnadvisor_graph::Csr;
use serde::{Deserialize, Serialize};

use crate::kernels::advance_gunrock::{AdvanceKernel, LAUNCHES_PER_ADVANCE};
use crate::kernels::edge_centric::EdgeCentricKernel;
use crate::kernels::node_centric::NodeCentricKernel;
use crate::kernels::saga_neugraph::run_saga_layer;
use crate::kernels::scatter_pyg::{GatherKernel, ScatterKernel};
use crate::kernels::spmm_dgl::{SpmmKernel, StackingKernel};
use crate::runtime::Advisor;
use crate::Result;

/// The execution strategies under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Framework {
    /// GNNAdvisor (this paper).
    GnnAdvisor,
    /// Deep Graph Library: fused SpMM + feature stacking.
    Dgl,
    /// PyTorch-Geometric: torch-scatter gather + atomic scatter-reduce.
    Pyg,
    /// GunRock: frontier advance with scalar operators.
    Gunrock,
    /// NeuGraph: SAGA dataflow with chunked PCIe streaming.
    Neugraph,
    /// Node-centric strawman (Figure 4b).
    NodeCentric,
    /// Edge-centric strawman (Figure 4c).
    EdgeCentric,
}

impl Framework {
    /// Whether the framework applies GNNAdvisor's reduce-before-aggregate
    /// ordering for GCN-class models (Section 4.2). The paper credits its
    /// largest PyG gaps to "node dimension reduction before aggregation"
    /// (Section 8.3) — i.e. the PyG and GunRock pipelines it benchmarks
    /// aggregate at the layer's full input dimensionality, and NeuGraph's
    /// SAGA streams full vertex data from the host.
    pub fn reduces_before_aggregation(&self) -> bool {
        matches!(self, Framework::GnnAdvisor | Framework::Dgl)
    }

    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Framework::GnnAdvisor => "GNNAdvisor",
            Framework::Dgl => "DGL",
            Framework::Pyg => "PyG",
            Framework::Gunrock => "GunRock",
            Framework::Neugraph => "NeuGraph",
            Framework::NodeCentric => "node-centric",
            Framework::EdgeCentric => "edge-centric",
        }
    }
}

/// Framework kernel launches DGL spends per aggregation phase (feature
/// stacking, degree-norm coefficients, message transform, reduce, and the
/// epilogue each launch separately).
pub const DGL_OPS_PER_LAYER: u64 = 5;

/// Default NeuGraph chunk budget: a fixed share of device memory for
/// resident chunk features (NeuGraph's streaming granularity).
pub const NEUGRAPH_CHUNK_BUDGET: u64 = 64 * 1024 * 1024;

/// Runs one aggregation pass of `framework` over `graph` at dimensionality
/// `dim`. For [`Framework::GnnAdvisor`] pass the prepared [`Advisor`]; for
/// the baselines it is ignored.
pub fn aggregate_with(
    framework: Framework,
    engine: &Engine,
    graph: &Csr,
    dim: usize,
    advisor: Option<&Advisor>,
) -> Result<RunMetrics> {
    let mut run = RunMetrics::default();
    match framework {
        Framework::GnnAdvisor => {
            let adv = advisor.expect("GnnAdvisor strategy requires a prepared Advisor");
            run.push_kernel(adv.aggregate(dim)?);
        }
        Framework::Dgl => {
            run.push_kernel(crate::submit::launch(
                engine,
                &StackingKernel::new(graph.num_nodes(), dim),
            )?);
            let mut spmm = crate::submit::launch(engine, &SpmmKernel::new(graph, dim))?;
            // DGL's dataflow executes aggregation as several framework ops
            // (degree-norm coefficients, message transform, reduce,
            // epilogue), each its own kernel launch; GNNAdvisor fuses the
            // whole phase into one.
            let extra = engine.spec().kernel_launch_cycles * (DGL_OPS_PER_LAYER - 2);
            spmm.elapsed_cycles += extra;
            spmm.phases.launch_cycles += extra;
            spmm.time_ms = engine.spec().cycles_to_ms(spmm.elapsed_cycles);
            run.push_kernel(spmm);
        }
        Framework::Pyg => {
            run.push_kernel(crate::submit::launch(
                engine,
                &GatherKernel::new(graph, dim),
            )?);
            run.push_kernel(crate::submit::launch(
                engine,
                &ScatterKernel::new(graph, dim),
            )?);
        }
        Framework::Gunrock => {
            let metrics = crate::submit::launch(engine, &AdvanceKernel::new(graph, dim))?;
            // GunRock's scalar operators advance one dimension at a time:
            // each of the D passes launches its operator pipeline.
            let extra =
                engine.spec().kernel_launch_cycles * (dim as u64 * LAUNCHES_PER_ADVANCE as u64 - 1);
            let mut m = metrics;
            m.elapsed_cycles += extra;
            m.phases.launch_cycles += extra;
            m.time_ms = engine.spec().cycles_to_ms(m.elapsed_cycles);
            run.push_kernel(m);
        }
        Framework::Neugraph => {
            run.merge(run_saga_layer(engine, graph, dim, NEUGRAPH_CHUNK_BUDGET)?);
        }
        Framework::NodeCentric => {
            run.push_kernel(crate::submit::launch(
                engine,
                &NodeCentricKernel::new(graph, dim, 256),
            )?);
        }
        Framework::EdgeCentric => {
            run.push_kernel(crate::submit::launch(
                engine,
                &EdgeCentricKernel::new(graph, dim, 256),
            )?);
        }
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::AggOrder;
    use crate::runtime::AdvisorConfig;
    use gnnadvisor_gpu::GpuSpec;
    use gnnadvisor_graph::generators::{community_graph, CommunityParams};

    fn setup() -> (Csr, Engine) {
        let params = CommunityParams {
            num_nodes: 3_000,
            num_edges: 60_000,
            mean_community: 60,
            community_size_cv: 0.3,
            inter_fraction: 0.1,
            shuffle_ids: true,
        };
        let (g, _) = community_graph(&params, 55).expect("valid");
        (g, Engine::new(GpuSpec::quadro_p6000()))
    }

    #[test]
    fn all_baselines_run() {
        let (g, engine) = setup();
        for fw in [
            Framework::Dgl,
            Framework::Pyg,
            Framework::Gunrock,
            Framework::Neugraph,
            Framework::NodeCentric,
            Framework::EdgeCentric,
        ] {
            let run = aggregate_with(fw, &engine, &g, 32, None).expect("runs");
            assert!(run.total_ms() > 0.0, "{} produced zero time", fw.name());
        }
    }

    #[test]
    fn advisor_beats_every_baseline_on_power_law_community_graph() {
        let (g, engine) = setup();
        let advisor = Advisor::new(
            &g,
            96,
            16,
            10,
            AggOrder::UpdateThenAggregate,
            AdvisorConfig::default(),
        )
        .expect("builds");
        let dim = 16;
        let ours = aggregate_with(Framework::GnnAdvisor, &engine, &g, dim, Some(&advisor))
            .expect("runs")
            .total_ms();
        for fw in [
            Framework::Dgl,
            Framework::Pyg,
            Framework::Gunrock,
            Framework::EdgeCentric,
        ] {
            let theirs = aggregate_with(fw, &engine, &g, dim, None)
                .expect("runs")
                .total_ms();
            assert!(
                ours < theirs,
                "GNNAdvisor ({ours:.4} ms) must beat {} ({theirs:.4} ms)",
                fw.name()
            );
        }
    }

    #[test]
    fn gunrock_gap_is_order_of_magnitude() {
        let (g, engine) = setup();
        let advisor = Advisor::new(
            &g,
            96,
            16,
            10,
            AggOrder::UpdateThenAggregate,
            AdvisorConfig::default(),
        )
        .expect("builds");
        let dim = 96; // GraphSage aggregates before dimension reduction
        let ours = aggregate_with(Framework::GnnAdvisor, &engine, &g, dim, Some(&advisor))
            .expect("runs")
            .total_ms();
        let gunrock = aggregate_with(Framework::Gunrock, &engine, &g, dim, None)
            .expect("runs")
            .total_ms();
        assert!(
            gunrock > ours * 10.0,
            "per-dimension scalar advance must trail by an order of magnitude: {gunrock:.3} vs {ours:.3}"
        );
    }

    #[test]
    fn neugraph_io_dominates_on_streaming() {
        let (g, engine) = setup();
        let run = aggregate_with(Framework::Neugraph, &engine, &g, 256, None).expect("runs");
        assert!(
            run.transfer_ms > 0.0,
            "NeuGraph must pay PCIe transfer time"
        );
    }
}
