//! The end-to-end GNNAdvisor runtime (Figure 1).
//!
//! [`Advisor::new`] wires the whole pipeline: extract input information,
//! decide runtime parameters (user-supplied, analytical Modeling, or the
//! evolutionary Estimating search), apply community-aware node renumbering,
//! partition groups, and build the Algorithm 1 shared layout. After that,
//! [`Advisor::aggregate`] launches the aggregation kernel for any embedding
//! dimensionality and [`Advisor::update`] prices the dense update.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use gnnadvisor_gpu::{BlockResources, Engine, GpuSpec, KernelMetrics, DEFAULT_REGS_PER_THREAD};
use gnnadvisor_graph::reorder::{renumber, RenumberConfig};
use gnnadvisor_graph::{Csr, Permutation};

use crate::input::{extract, AggOrder, InputInfo};
use crate::kernels::advisor::AdvisorKernel;
use crate::memory::organize::{organize_shared, SharedLayout};
use crate::tuning::estimator::{Estimator, EstimatorConfig};
use crate::tuning::model;
use crate::tuning::params::RuntimeParams;
use crate::tuning::two_tier::{aggregation_metrics, tune_two_tier, TwoTierConfig};
use crate::workload::group::{partition_groups, NeighborGroup};
use crate::Result;

/// How runtime parameters are chosen.
#[derive(Debug, Clone, Default)]
pub enum TuneStrategy {
    /// Analytical Modeling only (Section 7.1): grid search under Eq. 2–4.
    #[default]
    ModelOnly,
    /// Evolutionary Estimating (Section 7.2) seeded by the analytical model.
    Evolutionary(EstimatorConfig),
    /// Two-tier tuning: explore on the calibrated closed-form model,
    /// verify only the top-K finalists with event-level aggregation
    /// launches (see [`crate::tuning::two_tier`]).
    TwoTier(TwoTierConfig),
    /// Fixed user-provided parameters (the paper's manual-tuning interface).
    Manual(RuntimeParams),
}

/// Configuration of the runtime.
#[derive(Debug, Clone)]
pub struct AdvisorConfig {
    /// Target device.
    pub spec: GpuSpec,
    /// Parameter selection strategy.
    pub tune: TuneStrategy,
    /// Override: force renumbering on/off regardless of tuned params
    /// (`None` follows the tuned/default value).
    pub renumber: Option<bool>,
    /// Override: force block-level optimization on/off.
    pub use_shared: Option<bool>,
    /// Inject a pre-built engine instead of constructing one from `spec`.
    /// Engines share their [`gnnadvisor_gpu::RunContext`] when cloned, so a
    /// sweep that hands the same engine to many advisors reuses one set of
    /// simulation buffers. The injected engine's device is authoritative
    /// for kernel pricing; keep it consistent with `spec`, which still
    /// drives tuning.
    pub engine: Option<Engine>,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        Self {
            spec: GpuSpec::quadro_p6000(),
            tune: TuneStrategy::ModelOnly,
            renumber: None,
            use_shared: None,
            engine: None,
        }
    }
}

/// A prepared GNNAdvisor runtime bound to one graph and one GNN shape.
///
/// # Examples
///
/// ```
/// use gnnadvisor_core::input::AggOrder;
/// use gnnadvisor_core::runtime::{Advisor, AdvisorConfig};
/// use gnnadvisor_graph::generators::barabasi_albert;
///
/// let graph = barabasi_albert(500, 4, 7).unwrap();
/// let advisor = Advisor::new(
///     &graph,
///     96,                              // input feature dim
///     16,                              // hidden dim
///     10,                              // classes
///     AggOrder::UpdateThenAggregate,   // GCN-style ordering
///     AdvisorConfig::default(),        // auto-tune via Eq. 2-4
/// )
/// .unwrap();
/// let metrics = advisor.aggregate(16).unwrap();
/// assert!(metrics.time_ms > 0.0);
/// ```
/// The launch shape `aggregate` actually uses for one embedding
/// dimensionality: the (possibly narrowed) runtime parameters plus the
/// shared layout rebuilt for them, or `None` when the kernel falls back
/// to direct atomic accumulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedLaunch {
    /// Parameters of the launch, after any block narrowing.
    pub params: RuntimeParams,
    /// The shared layout staged by the launch (`None` = atomic fallback).
    pub layout: Option<SharedLayout>,
}

pub struct Advisor {
    engine: Engine,
    graph: Csr,
    permutation: Option<Permutation>,
    params: RuntimeParams,
    input: InputInfo,
    groups: Vec<NeighborGroup>,
    layout: SharedLayout,
    resolved: Mutex<BTreeMap<usize, Arc<ResolvedLaunch>>>,
}

impl Advisor {
    /// Builds the runtime: extract → tune → renumber → partition → organize.
    pub fn new(
        graph: &Csr,
        feat_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
        agg_order: AggOrder,
        config: AdvisorConfig,
    ) -> Result<Self> {
        let input = extract(graph, feat_dim, hidden_dim, num_classes, agg_order);

        let mut params = match &config.tune {
            TuneStrategy::ModelOnly => model::decide(&input, &config.spec),
            TuneStrategy::Evolutionary(cfg) => {
                Estimator::new(input.clone(), config.spec.clone(), *cfg).tune()
            }
            TuneStrategy::TwoTier(cfg) => {
                let dim = input.aggregation_dim();
                tune_two_tier(&input, &config.spec, cfg, |p, e| {
                    aggregation_metrics(graph, dim, p, e)
                })
                .best
            }
            TuneStrategy::Manual(p) => {
                p.validate()?;
                *p
            }
        };
        if let Some(r) = config.renumber {
            params.renumber = r;
        }
        if let Some(s) = config.use_shared {
            params.use_shared = s;
        }

        let (graph, permutation) = if params.renumber {
            let r = renumber(graph, &RenumberConfig::default())?;
            (graph.permute(&r.permutation)?, Some(r.permutation))
        } else {
            (graph.clone(), None)
        };

        let groups = partition_groups(&graph, params.group_size)?;
        let layout = organize_shared(&groups, params.groups_per_block());
        let engine = config.engine.unwrap_or_else(|| Engine::new(config.spec));

        Ok(Self {
            engine,
            graph,
            permutation,
            params,
            input,
            groups,
            layout,
            resolved: Mutex::new(BTreeMap::new()),
        })
    }

    /// Launches the aggregation kernel at dimensionality `dim`.
    ///
    /// Shared staging requires the Algorithm 1 layout to fit the device's
    /// per-block shared memory *for the worst block*. When it does not —
    /// e.g. after renumbering clusters many low-degree nodes into one
    /// block, inflating the slot count — the launch is re-shaped with a
    /// narrower block (halved `tpb`) until the layout fits, exactly as a
    /// CUDA runtime would re-tune the launch configuration. Only if even a
    /// 32-thread block cannot host one row does the kernel fall back to
    /// direct atomic accumulation.
    pub fn aggregate(&self, dim: usize) -> Result<KernelMetrics> {
        let resolved = self.resolved_launch(dim);
        let kernel = AdvisorKernel::new(
            &self.graph,
            &self.groups,
            resolved.layout.as_ref(),
            dim,
            resolved.params,
        );
        Ok(crate::submit::launch(&self.engine, &kernel)?)
    }

    /// The launch shape `aggregate(dim)` actually uses, with the narrowing
    /// loop's outcome cached per dimensionality: repeated `aggregate`
    /// calls reuse the resolved shape instead of re-running Algorithm 1,
    /// and callers can inspect the parameters and layout that were really
    /// launched (which [`Advisor::params`]/[`Advisor::layout`] — the
    /// *tuned* shape — need not match after a reshape).
    pub fn resolved_launch(&self, dim: usize) -> Arc<ResolvedLaunch> {
        let mut cache = self
            .resolved
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(hit) = cache.get(&dim) {
            return Arc::clone(hit);
        }
        let launch = Arc::new(self.resolve_launch(dim));
        cache.insert(dim, Arc::clone(&launch));
        launch
    }

    fn resolve_launch(&self, dim: usize) -> ResolvedLaunch {
        let spec = self.engine.spec();
        if self.params.use_shared {
            let mut params = self.params;
            loop {
                let layout = organize_shared(&self.groups, params.groups_per_block());
                let resources = BlockResources {
                    regs_per_thread: DEFAULT_REGS_PER_THREAD,
                    smem_bytes: layout.shared_bytes(dim),
                    threads: params.threads_per_block,
                };
                if spec.occupancy_limit(&resources).is_launchable() {
                    return ResolvedLaunch {
                        params,
                        layout: Some(layout),
                    };
                }
                let next = params.threads_per_block / 2;
                // Below 128 threads the extra block-dispatch overhead of
                // the narrower launch outweighs what staging saves, so
                // fall back to direct atomic accumulation instead.
                if next < 128 || next < params.dim_workers {
                    break;
                }
                params.threads_per_block = next;
            }
        }
        ResolvedLaunch {
            params: self.params,
            layout: None,
        }
    }

    /// Prices the dense update `rows x in_dim · in_dim x out_dim`.
    pub fn update(&self, rows: usize, in_dim: usize, out_dim: usize) -> KernelMetrics {
        crate::submit::gemm(&self.engine, rows, out_dim, in_dim)
    }

    /// The chosen runtime parameters.
    pub fn params(&self) -> &RuntimeParams {
        &self.params
    }

    /// The extracted input information.
    pub fn input(&self) -> &InputInfo {
        &self.input
    }

    /// The (possibly renumbered) execution graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// The renumbering permutation, when applied — callers must permute
    /// node features and labels with it before interpreting outputs.
    pub fn permutation(&self) -> Option<&Permutation> {
        self.permutation.as_ref()
    }

    /// The group partition (for inspection and tests).
    pub fn groups(&self) -> &[NeighborGroup] {
        &self.groups
    }

    /// The Algorithm 1 shared-memory layout.
    pub fn layout(&self) -> &SharedLayout {
        &self.layout
    }

    /// The simulated device engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_graph::generators::{community_graph, CommunityParams};

    fn graph() -> Csr {
        let params = CommunityParams {
            num_nodes: 2_000,
            num_edges: 40_000,
            mean_community: 50,
            community_size_cv: 0.3,
            inter_fraction: 0.1,
            shuffle_ids: true,
        };
        community_graph(&params, 33).expect("valid").0
    }

    #[test]
    fn auto_tuned_runtime_runs() {
        let g = graph();
        let adv = Advisor::new(
            &g,
            96,
            16,
            10,
            AggOrder::UpdateThenAggregate,
            AdvisorConfig::default(),
        )
        .expect("builds");
        adv.params().validate().expect("tuned params valid");
        let m = adv.aggregate(16).expect("aggregation runs");
        assert!(m.time_ms > 0.0);
        let u = adv.update(g.num_nodes(), 96, 16);
        assert!(u.time_ms > 0.0);
    }

    #[test]
    fn renumbering_changes_graph_but_preserves_edges() {
        let g = graph();
        let adv = Advisor::new(
            &g,
            96,
            16,
            10,
            AggOrder::UpdateThenAggregate,
            AdvisorConfig::default(),
        )
        .expect("builds");
        assert!(adv.permutation().is_some(), "default tuned params renumber");
        assert_eq!(adv.graph().num_edges(), g.num_edges());
        assert_ne!(
            adv.graph(),
            &g,
            "shuffled community graph must actually be renumbered"
        );
    }

    #[test]
    fn renumber_override_disables() {
        let g = graph();
        let cfg = AdvisorConfig {
            renumber: Some(false),
            ..Default::default()
        };
        let adv = Advisor::new(&g, 96, 16, 10, AggOrder::UpdateThenAggregate, cfg).expect("builds");
        assert!(adv.permutation().is_none());
        assert_eq!(adv.graph(), &g);
    }

    #[test]
    fn renumbering_improves_cache_behaviour() {
        let g = graph();
        // A 2k-node feature matrix fits entirely in the P6000's 3 MB L2,
        // which would mask locality; shrink the cache so reuse distance
        // matters, as it does for the paper's Type III graphs.
        let mut spec = GpuSpec::quadro_p6000();
        spec.l2_bytes = 48 * 1024;
        let on = Advisor::new(
            &g,
            96,
            16,
            10,
            AggOrder::UpdateThenAggregate,
            AdvisorConfig {
                renumber: Some(true),
                spec: spec.clone(),
                ..Default::default()
            },
        )
        .expect("builds");
        let off = Advisor::new(
            &g,
            96,
            16,
            10,
            AggOrder::UpdateThenAggregate,
            AdvisorConfig {
                renumber: Some(false),
                spec,
                ..Default::default()
            },
        )
        .expect("builds");
        let m_on = on.aggregate(16).expect("runs");
        let m_off = off.aggregate(16).expect("runs");
        assert!(
            m_on.dram_read_bytes < m_off.dram_read_bytes,
            "renumbering must cut DRAM reads: {} vs {}",
            m_on.dram_read_bytes,
            m_off.dram_read_bytes
        );
        assert!(m_on.cache_hit_rate() > m_off.cache_hit_rate());
    }

    #[test]
    fn injected_engine_is_shared_and_thread_count_invariant() {
        let g = graph();
        // The full advisor pipeline (renumbering included) must price
        // identically at any simulation worker count, and an injected
        // shared engine must reproduce results run-to-run.
        let mut runs = Vec::new();
        for threads in [1, 2, 5] {
            let cfg = AdvisorConfig {
                engine: Some(
                    Engine::builder(GpuSpec::quadro_p6000())
                        .sim_threads(threads)
                        .build()
                        .expect("valid"),
                ),
                renumber: Some(true),
                ..Default::default()
            };
            let adv =
                Advisor::new(&g, 96, 16, 10, AggOrder::UpdateThenAggregate, cfg).expect("builds");
            runs.push(adv.aggregate(32).expect("runs"));
        }
        assert_eq!(runs[0], runs[1], "1 vs 2 workers");
        assert_eq!(runs[0], runs[2], "1 vs 5 workers");

        let shared = Engine::new(GpuSpec::quadro_p6000());
        let build = |engine: Engine| {
            Advisor::new(
                &g,
                96,
                16,
                10,
                AggOrder::UpdateThenAggregate,
                AdvisorConfig {
                    engine: Some(engine),
                    ..Default::default()
                },
            )
            .expect("builds")
        };
        let a = build(shared.clone()).aggregate(32).expect("runs");
        let b = build(shared).aggregate(32).expect("runs");
        assert_eq!(a, b, "shared context must not leak state across runs");
    }

    #[test]
    fn manual_params_respected() {
        let g = graph();
        let manual = RuntimeParams {
            group_size: 7,
            threads_per_block: 128,
            dim_workers: 4,
            use_shared: false,
            renumber: false,
        };
        let cfg = AdvisorConfig {
            tune: TuneStrategy::Manual(manual),
            ..Default::default()
        };
        let adv = Advisor::new(&g, 96, 16, 10, AggOrder::UpdateThenAggregate, cfg).expect("builds");
        assert_eq!(adv.params(), &manual);
        assert!(adv.groups().iter().all(|grp| grp.len() <= 7));
    }

    #[test]
    fn invalid_manual_params_rejected() {
        let g = graph();
        let bad = RuntimeParams {
            group_size: 0,
            ..Default::default()
        };
        let cfg = AdvisorConfig {
            tune: TuneStrategy::Manual(bad),
            ..Default::default()
        };
        assert!(Advisor::new(&g, 96, 16, 10, AggOrder::UpdateThenAggregate, cfg).is_err());
    }

    #[test]
    fn resolved_launch_reports_the_actually_used_shape() {
        let g = graph();
        let adv = Advisor::new(
            &g,
            96,
            16,
            10,
            AggOrder::UpdateThenAggregate,
            AdvisorConfig::default(),
        )
        .expect("builds");
        let spec = adv.engine().spec().clone();
        let mut narrowed_somewhere = false;
        for dim in [16usize, 64, 256, 512, 1024, 2048, 8192] {
            let resolved = adv.resolved_launch(dim);
            match &resolved.layout {
                Some(layout) => {
                    // The reported layout must be the one the launch
                    // really uses: built for the (possibly narrowed)
                    // params and admissible on the device.
                    let resources = BlockResources {
                        regs_per_thread: DEFAULT_REGS_PER_THREAD,
                        smem_bytes: layout.shared_bytes(dim),
                        threads: resolved.params.threads_per_block,
                    };
                    assert!(
                        spec.occupancy_limit(&resources).is_launchable(),
                        "dim {dim}"
                    );
                    assert_eq!(
                        layout,
                        &organize_shared(adv.groups(), resolved.params.groups_per_block()),
                        "dim {dim}: cached layout drifted from its params"
                    );
                    if resolved.params.threads_per_block < adv.params().threads_per_block {
                        narrowed_somewhere = true;
                    }
                }
                None => {
                    // Fallback: the un-narrowed tuned params are used.
                    assert_eq!(&resolved.params, adv.params(), "dim {dim}");
                }
            }
            // Repeated calls hit the cache (same Arc) and price the same.
            assert!(
                Arc::ptr_eq(&resolved, &adv.resolved_launch(dim)),
                "dim {dim}: resolution must be cached"
            );
            assert_eq!(
                adv.aggregate(dim).expect("runs"),
                adv.aggregate(dim).expect("runs"),
                "dim {dim}"
            );
        }
        assert!(
            narrowed_somewhere,
            "at least one dim must exercise the narrowing loop \
             (otherwise this test lost its subject)"
        );
    }

    #[test]
    fn shared_fallback_on_huge_dims() {
        let g = graph();
        let adv = Advisor::new(
            &g,
            8192,
            16,
            10,
            AggOrder::AggregateThenUpdate,
            AdvisorConfig::default(),
        )
        .expect("builds");
        // 8192-dim rows cannot fit the 48 KB shared budget with any slot
        // count > 1; the aggregate call must still succeed via fallback.
        let m = adv.aggregate(8192).expect("fallback path runs");
        assert!(m.time_ms > 0.0);
    }
}
