//! Dynamic-graph serving: queries and graph updates on one clock.
//!
//! GNNAdvisor's locality story (Section 6.1, evaluated in §8.2's Type II
//! result) is a property of the *current* edge layout: community-aware
//! renumbering packs neighborhoods into consecutive ids, and the SpMM
//! aggregation's L2 hit-rate rides on that packing. Under a mutating
//! production graph the packing decays — uniformly random churn threads
//! long-span edges through the community blocks — and nothing in a
//! static pipeline notices. This module is the online version of that
//! result (ROADMAP item 4):
//!
//! - updates from a seeded stream ([`gnnadvisor_graph::dynamic`]) are
//!   interleaved with request arrivals on the simulated clock: every
//!   update with `at_ms <=` a batch's dispatch instant is applied to the
//!   live [`DeltaCsr`] before that batch plans;
//! - each batch executes against a copy-on-write [`GraphSnapshot`] taken
//!   at plan time, so in-flight work observes one consistent version
//!   while updates keep applying — the report tags every batch with the
//!   version it ran against;
//! - a [`RenumberPolicy`] watches the batches' kernel L2 hit-rate
//!   through a sliding [`HitRateWindow`]; when the windowed rate sinks
//!   below `watermark x` the baseline captured after the last rebuild,
//!   it triggers [`reorder::renumber`] + compaction, charging a rebuild
//!   stall on the simulated clock that subsequent batches must wait out
//!   — amortizing the rebuild against the recovered kernel speed.
//!
//! The arrival/admission/batching/retry/deadline machinery is the
//! serving pipeline's, reused verbatim ([`plan_batches`], the stream
//! round-robin, the conservation invariant); batches may round-robin
//! across several replica engines (the cluster integration: replicated
//! serving over one evolving graph). Everything downstream of the seeds
//! is deterministic and byte-identical at any `GNNADVISOR_SIM_THREADS`.

use gnnadvisor_gpu::stream::OpHandle;
use gnnadvisor_gpu::{BlockSink, Engine, GridConfig, HitRateWindow, Kernel, StreamSim, Workload};
use gnnadvisor_graph::dynamic::{DeltaCsr, UpdateEvent, UpdateKind};
use gnnadvisor_graph::reorder::{renumber, RenumberConfig};
use gnnadvisor_graph::{Csr, NodeId};

use crate::kernels::advisor::AdvisorKernel;
use crate::memory::organize::{organize_shared, SharedLayout};
use crate::serving::{
    plan_batches, BatchWork, DeviceWork, DispatchedBatch, Request, ServingConfig, ServingReport,
};
use crate::tuning::params::RuntimeParams;
use crate::workload::group::{partition_groups, NeighborGroup};
use crate::{CoreError, Result};

pub use gnnadvisor_graph::dynamic::{generate_updates, GraphSnapshot, UpdateStreamConfig};

/// The GNNAdvisor aggregation kernel pinned to one graph snapshot.
///
/// The static runtime borrows its graph and group partition for the
/// lifetime of a launch; dynamic serving cannot — a batch's device work
/// outlives the planning borrow while updates keep mutating the live
/// graph. This wrapper owns the materialized snapshot CSR together with
/// the Section 5.1 group partition and the Algorithm 1 shared layout
/// built from it, and reconstructs the borrowing [`AdvisorKernel`] on
/// demand. Executors build one per graph version and reuse it across the
/// batches pinned to that version.
pub struct SnapshotAggregationKernel {
    graph: Csr,
    groups: Vec<NeighborGroup>,
    layout: Option<SharedLayout>,
    params: RuntimeParams,
    dim: usize,
}

impl SnapshotAggregationKernel {
    /// Partitions `graph` into neighbor groups and (when
    /// `params.use_shared`) organizes the shared-memory layout, yielding
    /// a self-contained aggregation kernel at dimensionality `dim`.
    pub fn prepare(graph: &Csr, dim: usize, params: RuntimeParams) -> Result<Self> {
        params.validate()?;
        if dim == 0 {
            return Err(CoreError::InvalidParams {
                reason: "aggregation dimensionality must be at least 1".into(),
            });
        }
        let groups = partition_groups(graph, params.group_size)?;
        let layout = params
            .use_shared
            .then(|| organize_shared(&groups, params.groups_per_block()));
        Ok(Self {
            graph: graph.clone(),
            groups,
            layout,
            params,
            dim,
        })
    }

    fn kernel(&self) -> AdvisorKernel<'_> {
        AdvisorKernel::new(
            &self.graph,
            &self.groups,
            self.layout.as_ref(),
            self.dim,
            self.params,
        )
    }
}

impl Kernel for SnapshotAggregationKernel {
    fn name(&self) -> &str {
        "advisor_snapshot_aggregation"
    }

    fn grid(&self) -> GridConfig {
        self.kernel().grid()
    }

    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        self.kernel().emit_block(block_id, sink)
    }
}

/// A cheap shareable handle to a prepared [`SnapshotAggregationKernel`]:
/// executors keep one `Arc` per graph version and box one handle per
/// batch, so re-partitioning happens once per version, not per batch.
pub struct SnapshotKernelHandle(pub std::sync::Arc<SnapshotAggregationKernel>);

impl Kernel for SnapshotKernelHandle {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn grid(&self) -> GridConfig {
        self.0.grid()
    }

    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        self.0.emit_block(block_id, sink)
    }
}

/// The model-specific half of dynamic serving: turns a dispatched batch
/// *plus the graph snapshot it is pinned to* into device work. The
/// snapshot arrives materialized (the runtime caches one materialization
/// per version) together with its version tag, so an executor can model
/// resident-graph state (e.g. upload topology only when the version
/// changed).
pub trait SnapshotExecutor {
    /// Plans the device ops for `batch` against `graph` at `version`.
    fn plan(&mut self, batch: &DispatchedBatch, graph: &Csr, version: u64) -> Result<BatchWork>;
}

/// The locality-triggered re-renumbering policy.
///
/// Trigger math: after every rebuild (and at start) the first full
/// window's hit-count-weighted rate becomes the *baseline*. A rebuild
/// fires when the window is full, at least `cooldown_batches` batches
/// have executed since the last rebuild, and
///
/// ```text
/// windowed_rate < watermark x baseline_rate
/// ```
///
/// The rebuild runs `reorder::renumber` on the live graph, swaps the
/// [`DeltaCsr`] base for the permuted, compacted CSR (one version bump),
/// and stalls subsequent batches by `edges x rebuild_cost_us_per_edge`
/// on the simulated clock — the amortization cost the recovered kernel
/// speed has to pay back.
#[derive(Debug, Clone, PartialEq)]
pub struct RenumberPolicy {
    /// Sliding-window length in batches; the policy never fires before
    /// the window fills.
    pub window: usize,
    /// Fraction of the baseline rate below which a rebuild fires, in
    /// `(0, 1]`.
    pub watermark: f64,
    /// Minimum batches between rebuilds (and before the first), so a
    /// noisy window cannot thrash rebuilds.
    pub cooldown_batches: usize,
    /// Simulated rebuild stall per live directed edge, microseconds
    /// (Louvain + RCM + compaction are roughly linear in edges).
    pub rebuild_cost_us_per_edge: f64,
}

impl Default for RenumberPolicy {
    fn default() -> Self {
        Self {
            window: 8,
            watermark: 0.98,
            cooldown_batches: 16,
            rebuild_cost_us_per_edge: 0.02,
        }
    }
}

impl RenumberPolicy {
    fn validate(&self) -> Result<()> {
        if self.window == 0 {
            return Err(CoreError::Serving {
                reason: "policy window must be at least 1 batch".into(),
            });
        }
        if !(self.watermark.is_finite() && self.watermark > 0.0 && self.watermark <= 1.0) {
            return Err(CoreError::Serving {
                reason: format!("watermark must be in (0, 1], got {}", self.watermark),
            });
        }
        if !(self.rebuild_cost_us_per_edge.is_finite() && self.rebuild_cost_us_per_edge >= 0.0) {
            return Err(CoreError::Serving {
                reason: format!(
                    "rebuild_cost_us_per_edge must be non-negative and finite, got {}",
                    self.rebuild_cost_us_per_edge
                ),
            });
        }
        Ok(())
    }
}

/// Shape of a dynamic-graph serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicConfig {
    /// The underlying serving shape (streams per replica, queue, batch,
    /// retry, deadline policies).
    pub serving: ServingConfig,
    /// The re-renumbering policy; `None` serves the decaying layout
    /// forever (the ablation arm of the bench).
    pub policy: Option<RenumberPolicy>,
    /// Fold the delta overlay into the base CSR after this many applied
    /// updates; `0` compacts only at rebuilds. Compaction never changes
    /// query results — it bounds overlay walk costs.
    pub compact_every: usize,
}

/// One batch's row in the version-tagged hit-rate trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotRow {
    /// Batch index in dispatch order.
    pub batch: usize,
    /// The batch's dispatch instant, ms.
    pub dispatch_ms: f64,
    /// Graph version the batch's snapshot was pinned to.
    pub version: u64,
    /// Hit-count-weighted L2 hit-rate of the batch's kernels (0 when the
    /// batch priced no cached traffic).
    pub hit_rate: f64,
    /// The policy window's rate after this batch, once the window is
    /// full and has seen traffic.
    pub windowed_rate: Option<f64>,
}

/// One locality-triggered rebuild.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenumberEvent {
    /// Instant the rebuild started on the simulated clock, ms.
    pub at_ms: f64,
    /// Version of the rebuilt graph (one past the decayed layout).
    pub version: u64,
    /// The windowed rate that tripped the watermark.
    pub windowed_rate: f64,
    /// The baseline rate the watermark was relative to.
    pub baseline_rate: f64,
    /// Simulated rebuild stall charged to subsequent batches, ms.
    pub rebuild_ms: f64,
}

/// Aggregate report of one dynamic-graph serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicReport {
    /// The serving-side statistics (latency, throughput, conservation
    /// buckets) over all replicas.
    pub serving: ServingReport,
    /// Replica engines the batches round-robinned across.
    pub replicas: usize,
    /// Updates applied to the live graph (effective mutations).
    pub updates_applied: usize,
    /// Updates that were no-ops against the live graph (stream-space
    /// collisions after renumbering never happen; this stays 0 for
    /// generator streams and is reported for trace replays).
    pub updates_noop: usize,
    /// Final graph version.
    pub final_version: u64,
    /// Final live node count.
    pub final_nodes: usize,
    /// Final live directed edge count.
    pub final_edges: usize,
    /// Periodic compactions performed (excluding rebuild compactions).
    pub compactions: usize,
    /// Locality-triggered rebuilds, in order.
    pub renumbers: Vec<RenumberEvent>,
    /// Per-batch version-tagged hit-rate trajectory, dispatch order.
    pub trajectory: Vec<SnapshotRow>,
}

impl DynamicReport {
    /// Mean per-batch kernel hit-rate over the first `k` batches with
    /// cache traffic — the "fresh layout" end of the trajectory.
    pub fn head_hit_rate(&self, k: usize) -> f64 {
        mean_rate(self.trajectory.iter().filter(|r| r.hit_rate > 0.0).take(k))
    }

    /// Mean per-batch kernel hit-rate over the last `k` batches with
    /// cache traffic — where decay (or recovery) shows.
    pub fn tail_hit_rate(&self, k: usize) -> f64 {
        let with_traffic: Vec<&SnapshotRow> = self
            .trajectory
            .iter()
            .filter(|r| r.hit_rate > 0.0)
            .collect();
        let skip = with_traffic.len().saturating_sub(k);
        mean_rate(with_traffic.into_iter().skip(skip))
    }

    /// Lowest full-window rate observed, if any window filled.
    pub fn min_windowed_rate(&self) -> Option<f64> {
        self.trajectory
            .iter()
            .filter_map(|r| r.windowed_rate)
            .min_by(|a, b| a.partial_cmp(b).expect("rates are finite"))
    }

    /// Renders the report as a deterministic fixed-precision table (the
    /// CLI prints this; CI diffs it byte-for-byte across runs and worker
    /// counts).
    pub fn render(&self) -> String {
        let mut out = self.serving.render();
        out.push_str("dynamic-graph report\n");
        out.push_str(&format!("  replicas             {}\n", self.replicas));
        out.push_str(&format!(
            "  updates applied      {}\n",
            self.updates_applied
        ));
        out.push_str(&format!("  update no-ops        {}\n", self.updates_noop));
        out.push_str(&format!("  final version        {}\n", self.final_version));
        out.push_str(&format!(
            "  final graph          {} nodes / {} edges\n",
            self.final_nodes, self.final_edges
        ));
        out.push_str(&format!("  compactions          {}\n", self.compactions));
        out.push_str(&format!(
            "  hit-rate head        {:.4}\n",
            self.head_hit_rate(8)
        ));
        out.push_str(&format!(
            "  hit-rate tail        {:.4}\n",
            self.tail_hit_rate(8)
        ));
        match self.min_windowed_rate() {
            Some(r) => out.push_str(&format!("  hit-rate low water   {r:.4}\n")),
            None => out.push_str("  hit-rate low water   n/a\n"),
        }
        out.push_str(&format!(
            "  re-renumber events   {}\n",
            self.renumbers.len()
        ));
        for e in &self.renumbers {
            out.push_str(&format!(
                "    at {:.3} ms -> v{}  window {:.4} < {:.4}  rebuild {:.3} ms\n",
                e.at_ms, e.version, e.windowed_rate, e.baseline_rate, e.rebuild_ms
            ));
        }
        out
    }
}

fn mean_rate<'a, I: Iterator<Item = &'a SnapshotRow>>(rows: I) -> f64 {
    let (mut sum, mut n) = (0.0f64, 0usize);
    for r in rows {
        sum += r.hit_rate;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// How one batch's retry chain ended (mirrors the serving pipeline).
enum BatchOutcome {
    Done(Option<OpHandle>),
    Exhausted,
}

/// The mutable graph side of the run: the live delta CSR plus the
/// stream-space → current-space id map that survives renumbering.
struct LiveGraph {
    delta: DeltaCsr,
    /// `id_map[stream_id] = current id`; updates reference stream-space
    /// ids so one generated stream drives renumbered and non-renumbered
    /// runs identically.
    id_map: Vec<NodeId>,
    /// One materialized CSR per version, rebuilt lazily.
    cache: Option<(u64, Csr)>,
}

impl LiveGraph {
    fn new(base: Csr) -> Self {
        let n = base.num_nodes();
        Self {
            delta: DeltaCsr::new(base),
            id_map: (0..n as NodeId).collect(),
            cache: None,
        }
    }

    fn map(&self, stream_id: NodeId) -> Result<NodeId> {
        self.id_map
            .get(stream_id as usize)
            .copied()
            .ok_or_else(|| CoreError::Serving {
                reason: format!(
                    "update references stream-space node {stream_id} but only {} exist",
                    self.id_map.len()
                ),
            })
    }

    /// Applies one update; returns whether it mutated the graph.
    fn apply(&mut self, ev: &UpdateEvent) -> Result<bool> {
        Ok(match ev.kind {
            UpdateKind::InsertEdge { u, v } => {
                let (u, v) = (self.map(u)?, self.map(v)?);
                self.delta.insert_edge(u, v)?
            }
            UpdateKind::DeleteEdge { u, v } => {
                let (u, v) = (self.map(u)?, self.map(v)?);
                self.delta.delete_edge(u, v)?
            }
            UpdateKind::AddNode => {
                let id = self.delta.add_node();
                self.id_map.push(id);
                true
            }
        })
    }

    /// The materialized CSR of the current version (cached per version).
    fn materialized(&mut self) -> (&Csr, u64) {
        let version = self.delta.version();
        if self.cache.as_ref().map(|(v, _)| *v) != Some(version) {
            self.cache = Some((version, self.delta.to_csr()));
        }
        let (v, csr) = self.cache.as_ref().expect("just filled");
        (csr, *v)
    }

    /// Renumbers + compacts the live graph, remapping the id map;
    /// returns the rebuilt edge count.
    fn rebuild(&mut self) -> Result<usize> {
        let live = self.delta.to_csr();
        let r = renumber(&live, &RenumberConfig::default())?;
        let permuted = live.permute(&r.permutation)?;
        let edges = permuted.num_edges();
        for id in &mut self.id_map {
            *id = r.permutation.new_of(*id);
        }
        self.delta = DeltaCsr::with_version(permuted, self.delta.version() + 1);
        self.cache = None;
        Ok(edges)
    }
}

/// Runs the dynamic-graph serving pipeline: batches planned from
/// `arrivals` round-robin across `engines x cfg.serving.streams`
/// simulated streams; updates due by each batch's dispatch instant are
/// applied first; the batch executes against a consistent snapshot of
/// the live graph; and the optional [`RenumberPolicy`] rebuilds the
/// layout when the measured locality signal sinks below its watermark.
///
/// `updates` must be sorted by `at_ms` (as [`generate_updates`]
/// produces) and reference stream-space node ids; `base` must be
/// symmetric (the renumbering pipeline's contract).
pub fn simulate_dynamic(
    engines: &[Engine],
    base: Csr,
    updates: &[UpdateEvent],
    arrivals: &[Request],
    cfg: &DynamicConfig,
    exec: &mut dyn SnapshotExecutor,
) -> Result<DynamicReport> {
    if engines.is_empty() {
        return Err(CoreError::Serving {
            reason: "at least one replica engine is required".into(),
        });
    }
    if cfg.serving.streams == 0 {
        return Err(CoreError::Serving {
            reason: "streams must be at least 1".into(),
        });
    }
    cfg.serving.retry.validate()?;
    if let Some(d) = cfg.serving.deadline_ms {
        if !(d.is_finite() && d > 0.0) {
            return Err(CoreError::Serving {
                reason: format!("deadline_ms must be positive and finite, got {d}"),
            });
        }
    }
    if let Some(p) = &cfg.policy {
        p.validate()?;
    }
    if updates.windows(2).any(|w| w[0].at_ms > w[1].at_ms) {
        return Err(CoreError::Serving {
            reason: "updates must be sorted by at_ms".into(),
        });
    }
    if !base.is_symmetric() {
        return Err(CoreError::Serving {
            reason: "dynamic serving requires a symmetric base graph (renumbering contract)".into(),
        });
    }

    let plan = plan_batches(arrivals, &cfg.serving.queue, &cfg.serving.batch)?;
    let spec = engines[0].spec();

    let mut sims: Vec<StreamSim<'_>> = engines.iter().map(StreamSim::new).collect();
    let slots: Vec<(usize, gnnadvisor_gpu::StreamId)> = {
        let mut slots = Vec::with_capacity(engines.len() * cfg.serving.streams);
        for (replica, sim) in sims.iter_mut().enumerate() {
            for _ in 0..cfg.serving.streams {
                slots.push((replica, sim.stream()));
            }
        }
        slots
    };

    let mut live = LiveGraph::new(base);
    let mut update_idx = 0usize;
    let mut updates_applied = 0usize;
    let mut updates_noop = 0usize;
    let mut applied_since_compact = 0usize;
    let mut compactions = 0usize;

    let policy = cfg.policy.as_ref();
    let mut window = policy.map(|p| HitRateWindow::new(p.window));
    let mut baseline: Option<f64> = None;
    let mut batches_since_rebuild = 0usize;
    let mut maintenance_until_ms = 0.0f64;

    let mut outcomes: Vec<(usize, BatchOutcome)> = Vec::with_capacity(plan.batches.len());
    let mut trajectory: Vec<SnapshotRow> = Vec::with_capacity(plan.batches.len());
    let mut renumbers: Vec<RenumberEvent> = Vec::new();
    let mut retries = 0u64;

    for (i, batch) in plan.batches.iter().enumerate() {
        // 1. Apply every update due by this batch's dispatch instant.
        while update_idx < updates.len() && updates[update_idx].at_ms <= batch.dispatch_ms {
            if live.apply(&updates[update_idx])? {
                updates_applied += 1;
                applied_since_compact += 1;
            } else {
                updates_noop += 1;
            }
            update_idx += 1;
            if cfg.compact_every > 0 && applied_since_compact >= cfg.compact_every {
                live.delta.compact();
                compactions += 1;
                applied_since_compact = 0;
            }
        }

        // 2. Pin the batch to a consistent snapshot (cached per version)
        //    and plan its device work against it.
        let (graph, version) = {
            let (graph, version) = live.materialized();
            (graph.clone(), version)
        };
        let work = exec.plan(batch, &graph, version)?;

        // 3. Execute on the round-robin slot; a pending rebuild stall
        //    pushes the release time past the dispatch instant.
        let (replica, stream) = slots[i % slots.len()];
        let sim = &mut sims[replica];
        let mut release_ms = batch.dispatch_ms.max(maintenance_until_ms);
        let mut outcome = BatchOutcome::Exhausted;
        let (mut batch_hits, mut batch_misses) = (0u64, 0u64);
        for attempt in 1..=cfg.serving.retry.max_attempts {
            let release = spec.ms_to_cycles(release_ms);
            let mut tail = None;
            let mut attempt_cycles = 0u64;
            let mut faulted = false;
            for op in &work.ops {
                let workload = match op {
                    DeviceWork::Kernel(k) => Workload::Kernel(&**k),
                    DeviceWork::Gemm { m, n, k } => Workload::Gemm {
                        m: *m,
                        n: *n,
                        k: *k,
                    },
                    DeviceWork::Transfer { bytes } => Workload::Transfer { bytes: *bytes },
                };
                let enq = sim.try_enqueue_at(stream, workload, release)?;
                attempt_cycles += spec.ms_to_cycles(enq.metrics.time_ms());
                if attempt == 1 {
                    // The locality signal: kernel L2 traffic of the first
                    // attempt (retries re-price the same layout).
                    if let Some(k) = enq.metrics.as_kernel() {
                        batch_hits += k.l2_hits;
                        batch_misses += k.l2_misses;
                    }
                }
                if enq.fault.is_some() {
                    faulted = true;
                    break;
                }
                tail = Some(enq.handle);
            }
            if !faulted {
                outcome = BatchOutcome::Done(tail);
                break;
            }
            if attempt == cfg.serving.retry.max_attempts {
                break;
            }
            retries += 1;
            release_ms = spec.cycles_to_ms(release + attempt_cycles)
                + cfg.serving.retry.backoff_ms(i, attempt);
        }
        outcomes.push((replica, outcome));

        // 4. Feed the policy and maybe rebuild.
        let batch_rate = if batch_hits + batch_misses == 0 {
            0.0
        } else {
            batch_hits as f64 / (batch_hits + batch_misses) as f64
        };
        let mut windowed_rate = None;
        if let (Some(p), Some(w)) = (policy, window.as_mut()) {
            w.push(batch_hits, batch_misses);
            batches_since_rebuild += 1;
            if w.is_full() {
                if let Some(rate) = w.rate() {
                    windowed_rate = Some(rate);
                    match baseline {
                        None => baseline = Some(rate),
                        Some(b)
                            if rate < p.watermark * b
                                && batches_since_rebuild >= p.cooldown_batches =>
                        {
                            let edges = live.rebuild()?;
                            let rebuild_ms = edges as f64 * p.rebuild_cost_us_per_edge / 1000.0;
                            maintenance_until_ms = release_ms + rebuild_ms;
                            renumbers.push(RenumberEvent {
                                at_ms: release_ms,
                                version: live.delta.version(),
                                windowed_rate: rate,
                                baseline_rate: b,
                                rebuild_ms,
                            });
                            w.clear();
                            baseline = None;
                            batches_since_rebuild = 0;
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        trajectory.push(SnapshotRow {
            batch: i,
            dispatch_ms: batch.dispatch_ms,
            version,
            hit_rate: batch_rate,
            windowed_rate,
        });
    }

    // 5. Run every replica's schedule and aggregate per-request latencies
    //    exactly like the serving pipeline.
    let reports: Vec<_> = sims
        .into_iter()
        .map(|sim| sim.run())
        .collect::<core::result::Result<_, _>>()?;

    let mut latencies: Vec<f64> = Vec::new();
    let mut failed = 0usize;
    let mut deadline_missed = 0usize;
    let mut span_ms = reports.iter().map(|r| r.makespan_ms).fold(0.0, f64::max);
    for (i, (replica, outcome)) in outcomes.into_iter().enumerate() {
        let batch = &plan.batches[i];
        match outcome {
            BatchOutcome::Exhausted => failed += batch.requests.len(),
            BatchOutcome::Done(tail) => {
                let end_cycles = match tail {
                    Some(handle) => reports[replica]
                        .op_end(handle)
                        .expect("committed op has a span"),
                    None => spec.ms_to_cycles(batch.dispatch_ms),
                };
                let end_ms = spec.cycles_to_ms(end_cycles);
                span_ms = span_ms.max(end_ms);
                for request in &batch.requests {
                    let latency = (end_ms - request.arrival_ms).max(0.0);
                    match cfg.serving.deadline_ms {
                        Some(d) if latency > d => deadline_missed += 1,
                        _ => latencies.push(latency),
                    }
                }
            }
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));

    let completed = latencies.len();
    let mean_ms = if completed == 0 {
        0.0
    } else {
        latencies.iter().sum::<f64>() / completed as f64
    };
    let served = completed + deadline_missed;
    let (throughput_rps, goodput_rps) = if span_ms > 0.0 {
        (
            served as f64 * 1000.0 / span_ms,
            completed as f64 * 1000.0 / span_ms,
        )
    } else {
        (0.0, 0.0)
    };
    let serving = ServingReport {
        completed,
        shed: plan.shed,
        failed,
        deadline_missed,
        retries,
        batches: plan.batches.len(),
        p50_ms: crate::serving::percentile(&latencies, 50.0),
        p95_ms: crate::serving::percentile(&latencies, 95.0),
        p99_ms: crate::serving::percentile(&latencies, 99.0),
        mean_ms,
        throughput_rps,
        goodput_rps,
        makespan_ms: reports.iter().map(|r| r.makespan_ms).fold(0.0, f64::max),
        kernel_busy_cycles: reports.iter().map(|r| r.kernel_busy_cycles).sum(),
        copy_busy_cycles: reports.iter().map(|r| r.copy_busy_cycles).sum(),
        // Merge per-window means weighted by their kernel time (each
        // window's mean is already duration-weighted over its spans).
        mean_kernel_occupancy: {
            let busy: u64 = reports.iter().map(|r| r.kernel_busy_cycles).sum();
            if busy == 0 {
                0.0
            } else {
                reports
                    .iter()
                    .map(|r| r.mean_kernel_occupancy() * r.kernel_busy_cycles as f64)
                    .sum::<f64>()
                    / busy as f64
            }
        },
    };
    Ok(DynamicReport {
        serving,
        replicas: engines.len(),
        updates_applied,
        updates_noop,
        final_version: live.delta.version(),
        final_nodes: live.delta.num_nodes(),
        final_edges: live.delta.num_edges(),
        compactions,
        renumbers,
        trajectory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::{generate_arrivals, ArrivalConfig, BatchPolicy, QueuePolicy, RetryPolicy};
    use gnnadvisor_gpu::GpuSpec;
    use gnnadvisor_graph::generators::{community_graph, CommunityParams};

    /// An aggregation-only executor: one GNNAdvisor aggregation over the
    /// snapshot per batch (plus a token transfer), so the batch hit-rate
    /// *is* the layout's locality. One prepared kernel per version.
    struct SpmmExecutor {
        dim: usize,
        prepared: Option<(u64, std::sync::Arc<SnapshotAggregationKernel>)>,
    }

    impl SpmmExecutor {
        fn new(dim: usize) -> Self {
            Self {
                dim,
                prepared: None,
            }
        }
    }

    impl SnapshotExecutor for SpmmExecutor {
        fn plan(
            &mut self,
            batch: &DispatchedBatch,
            graph: &Csr,
            version: u64,
        ) -> Result<BatchWork> {
            if batch.requests.is_empty() {
                return Ok(BatchWork::default());
            }
            if self.prepared.as_ref().map(|(v, _)| *v) != Some(version) {
                let kernel =
                    SnapshotAggregationKernel::prepare(graph, self.dim, RuntimeParams::default())?;
                self.prepared = Some((version, std::sync::Arc::new(kernel)));
            }
            let kernel = self.prepared.as_ref().expect("just prepared").1.clone();
            Ok(BatchWork {
                ops: vec![
                    DeviceWork::Transfer {
                        bytes: (batch.requests.len() * 64) as u64,
                    },
                    DeviceWork::Kernel(Box::new(SnapshotKernelHandle(kernel))),
                ],
            })
        }
    }

    fn renumbered_base_sized(nodes: usize, edges: usize, seed: u64) -> Csr {
        let (g, _) = community_graph(
            &CommunityParams {
                num_nodes: nodes,
                num_edges: edges,
                mean_community: 40,
                community_size_cv: 0.3,
                inter_fraction: 0.08,
                shuffle_ids: true,
            },
            seed,
        )
        .expect("valid");
        let r = renumber(&g, &RenumberConfig::default()).expect("valid");
        g.permute(&r.permutation).expect("valid")
    }

    fn renumbered_base(seed: u64) -> Csr {
        renumbered_base_sized(800, 9_600, seed)
    }

    fn updates_for(base: &Csr, n: usize, seed: u64) -> Vec<UpdateEvent> {
        // Attachment-heavy churn: arrivals wire into communities at the
        // id-space tail, the decay re-renumbering can undo.
        generate_updates(
            base,
            &UpdateStreamConfig {
                num_updates: n,
                mean_interarrival_ms: 0.008,
                delete_fraction: 0.15,
                node_fraction: 0.25,
                attach_degree: 6,
                seed,
            },
        )
        .expect("valid")
    }

    fn arrivals(n: usize, gap_ms: f64, seed: u64) -> Vec<Request> {
        generate_arrivals(&ArrivalConfig {
            num_requests: n,
            mean_interarrival_ms: gap_ms,
            num_components: 1,
            seed,
        })
        .expect("valid")
    }

    fn config(policy: Option<RenumberPolicy>) -> DynamicConfig {
        DynamicConfig {
            serving: ServingConfig {
                streams: 2,
                queue: QueuePolicy { capacity: 64 },
                batch: BatchPolicy {
                    max_batch: 4,
                    max_delay_ms: 0.2,
                },
                retry: RetryPolicy::default(),
                deadline_ms: None,
            },
            policy,
            compact_every: 64,
        }
    }

    fn engine(sim_threads: usize) -> Engine {
        Engine::builder(GpuSpec::quadro_p6000())
            .sim_threads(sim_threads)
            .build()
            .expect("valid")
    }

    #[test]
    fn hit_rate_decays_without_the_policy() {
        let base = renumbered_base_sized(2_000, 24_000, 1);
        let updates = generate_updates(
            &base,
            &UpdateStreamConfig {
                num_updates: 6_000,
                mean_interarrival_ms: 0.00015,
                delete_fraction: 0.15,
                node_fraction: 0.25,
                attach_degree: 6,
                seed: 7,
            },
        )
        .expect("valid");
        let trace = arrivals(320, 0.004, 3);
        let report = simulate_dynamic(
            &[engine(1)],
            base,
            &updates,
            &trace,
            &config(None),
            &mut SpmmExecutor::new(32),
        )
        .expect("runs");
        assert_eq!(
            report.serving.completed as u64 + report.serving.shed,
            320,
            "conservation"
        );
        assert!(report.updates_applied > 0);
        assert!(report.renumbers.is_empty());
        let head = report.head_hit_rate(8);
        let tail = report.tail_hit_rate(8);
        assert!(
            tail < head - 0.01,
            "churn must decay the measured hit-rate: head={head:.4} tail={tail:.4}"
        );
        // Version tags are monotone and advance with the updates.
        assert!(report
            .trajectory
            .windows(2)
            .all(|w| w[0].version <= w[1].version));
        assert!(report.final_version > 0);
    }

    #[test]
    fn policy_triggers_and_recovers_goodput() {
        // Saturating pacing: arrivals outrun the device, so the span is
        // service-dominated and kernel speed is what goodput measures.
        // Churn lands over the first ~half of the trace; the policy's
        // rebuild amortizes against the recovered-locality second half.
        let base = renumbered_base_sized(2_000, 24_000, 1);
        let updates = generate_updates(
            &base,
            &UpdateStreamConfig {
                num_updates: 10_000,
                mean_interarrival_ms: 0.0001,
                delete_fraction: 0.15,
                node_fraction: 0.25,
                attach_degree: 6,
                seed: 7,
            },
        )
        .expect("valid");
        let trace = arrivals(800, 0.002, 3);
        let policy = RenumberPolicy {
            window: 8,
            watermark: 0.95,
            cooldown_batches: 30,
            rebuild_cost_us_per_edge: 0.0005,
        };
        let mut cfg = config(None);
        cfg.serving.streams = 1;
        let without = simulate_dynamic(
            &[engine(1)],
            base.clone(),
            &updates,
            &trace,
            &cfg,
            &mut SpmmExecutor::new(32),
        )
        .expect("runs");
        cfg.policy = Some(policy);
        let with = simulate_dynamic(
            &[engine(1)],
            base,
            &updates,
            &trace,
            &cfg,
            &mut SpmmExecutor::new(32),
        )
        .expect("runs");
        assert!(
            !with.renumbers.is_empty(),
            "decay past the watermark must trigger a rebuild"
        );
        assert!(
            with.tail_hit_rate(8) > without.tail_hit_rate(8),
            "rebuild must recover the tail hit-rate: with={:.4} without={:.4}",
            with.tail_hit_rate(8),
            without.tail_hit_rate(8)
        );
        assert!(
            with.serving.goodput_rps > without.serving.goodput_rps,
            "recovered locality must beat the decayed layout: with={:.3} without={:.3}",
            with.serving.goodput_rps,
            without.serving.goodput_rps
        );
        // The rebuild bumps the version by exactly one beyond the updates.
        let e = &with.renumbers[0];
        assert!(e.rebuild_ms > 0.0);
        assert!(e.windowed_rate < e.baseline_rate);
    }

    #[test]
    fn reports_are_identical_across_runs_and_worker_counts() {
        let base = renumbered_base(2);
        let updates = updates_for(&base, 800, 11);
        let trace = arrivals(48, 0.3, 5);
        let cfg = config(Some(RenumberPolicy::default()));
        let render_at = |sim_threads: usize| {
            simulate_dynamic(
                &[engine(sim_threads), engine(sim_threads)],
                base.clone(),
                &updates,
                &trace,
                &cfg,
                &mut SpmmExecutor::new(16),
            )
            .expect("runs")
            .render()
        };
        let serial = render_at(1);
        assert_eq!(render_at(1), serial, "same seeds, same report");
        assert_eq!(render_at(4), serial, "worker count must not leak");
    }

    #[test]
    fn conservation_holds_under_faults_and_deadlines() {
        use gnnadvisor_gpu::{FaultConfig, FaultPlan};
        let base = renumbered_base(3);
        let updates = updates_for(&base, 400, 13);
        let trace = arrivals(40, 0.3, 9);
        let mut cfg = config(Some(RenumberPolicy::default()));
        cfg.serving.retry = RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 0.25,
            seed: 13,
            ..RetryPolicy::default()
        };
        cfg.serving.deadline_ms = Some(30.0);
        let chaotic = Engine::builder(GpuSpec::quadro_p6000())
            .fault_plan(std::sync::Arc::new(
                FaultPlan::new(FaultConfig::uniform(0.25, 13)).expect("valid"),
            ))
            .build()
            .expect("valid");
        let report = simulate_dynamic(
            &[chaotic],
            base,
            &updates,
            &trace,
            &cfg,
            &mut SpmmExecutor::new(16),
        )
        .expect("runs");
        assert_eq!(
            report.serving.completed as u64
                + report.serving.shed
                + report.serving.failed as u64
                + report.serving.deadline_missed as u64,
            40,
            "conservation"
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let base = renumbered_base(4);
        let updates = updates_for(&base, 8, 1);
        let trace = arrivals(4, 1.0, 1);
        let mut exec = SpmmExecutor::new(16);
        let run = |engines: &[Engine], cfg: &DynamicConfig, updates: &[UpdateEvent]| {
            simulate_dynamic(
                engines,
                base.clone(),
                updates,
                &trace,
                cfg,
                &mut SpmmExecutor::new(16),
            )
        };
        assert!(matches!(
            run(&[], &config(None), &updates),
            Err(CoreError::Serving { .. })
        ));
        let mut bad = config(Some(RenumberPolicy {
            window: 0,
            ..Default::default()
        }));
        assert!(run(&[engine(1)], &bad, &updates).is_err());
        bad = config(Some(RenumberPolicy {
            watermark: 1.5,
            ..Default::default()
        }));
        assert!(run(&[engine(1)], &bad, &updates).is_err());
        // Unsorted updates are rejected.
        let mut shuffled = updates.clone();
        shuffled.reverse();
        assert!(run(&[engine(1)], &config(None), &shuffled).is_err());
        // Asymmetric base graphs are rejected.
        let asym = Csr::from_raw(2, vec![0, 1, 1], vec![1]).expect("valid csr");
        assert!(
            simulate_dynamic(&[engine(1)], asym, &[], &trace, &config(None), &mut exec).is_err()
        );
    }
}
