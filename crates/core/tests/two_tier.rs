//! Two-tier agreement properties: across random inputs and devices, the
//! calibrated fast path must keep enough ranking fidelity that its top-1
//! candidate survives engine verification near the top of the pool, and
//! the calibration error band must stay within the documented bound on
//! the bench workload.

use proptest::prelude::*;

use gnnadvisor_core::input::{extract, AggOrder};
use gnnadvisor_core::tuning::{
    aggregation_metrics, tune_two_tier, EstimatorConfig, TwoTierConfig, DOCUMENTED_ERROR_BAND,
};
use gnnadvisor_gpu::{Engine, GpuSpec};
use gnnadvisor_graph::generators::barabasi_albert;

fn small_search() -> TwoTierConfig {
    TwoTierConfig {
        estimator: EstimatorConfig {
            population: 8,
            iterations: 4,
            survivors: 4,
            ..Default::default()
        },
        top_k: 4,
        probes: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random graphs, feature widths, and devices, the fast-path
    /// winner must land in the engine-verified top-K of the explored
    /// candidate pool (K = a third of the pool, at least the finalist
    /// count) — the property that makes verifying only K finalists safe.
    #[test]
    fn fast_path_top1_lands_in_engine_top_k(
        seed in 0u64..1_000,
        nodes in 300usize..900,
        attach in 2usize..9,
        feat in 16usize..128,
        device in 0u8..4,
    ) {
        let graph = barabasi_albert(nodes, attach, seed).expect("generator");
        let mut spec = if device % 2 == 0 {
            GpuSpec::quadro_p6000()
        } else {
            GpuSpec::tesla_v100()
        };
        if device >= 2 {
            // A cache-starved variant: locality and the hit-fraction term
            // actually bind.
            spec.l2_bytes /= 16;
        }
        let input = extract(&graph, feat, 16, 10, AggOrder::UpdateThenAggregate);
        let dim = input.aggregation_dim();
        let cfg = small_search();
        let out = tune_two_tier(&input, &spec, &cfg, |p, e| {
            aggregation_metrics(&graph, dim, p, e)
        });
        prop_assert!(!out.pool.is_empty(), "search must explore candidates");

        // Engine-score the whole explored pool (ground truth).
        let engine = Engine::new(spec.clone());
        let mut scored: Vec<(f64, usize)> = out
            .pool
            .iter()
            .enumerate()
            .map(|(i, (p, _))| {
                let ms = aggregation_metrics(&graph, dim, p, &engine)
                    .map_or(f64::INFINITY, |m| m.time_ms);
                (ms, i)
            })
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let best_ms = scored[0].0;

        let fast_rank = scored
            .iter()
            .position(|&(_, i)| out.pool[i].0 == out.fast_best)
            .expect("fast winner was drawn from the pool");
        let k = cfg.top_k.max(out.pool.len().div_ceil(3));
        let fast_ms = scored
            .iter()
            .find(|&&(_, i)| out.pool[i].0 == out.fast_best)
            .map(|&(ms, _)| ms)
            .unwrap();
        // Ranking fidelity: top-1 sits in the engine's top-K, or is at
        // worst marginally slower than the engine's best (rank noise among
        // near-ties is fine; missing a 2x win is not).
        prop_assert!(
            fast_rank < k || fast_ms <= best_ms * 1.25,
            "fast top-1 {:?} ranked {}/{} on the engine ({} ms vs best {} ms)",
            out.fast_best,
            fast_rank + 1,
            out.pool.len(),
            fast_ms,
            best_ms
        );

        // And the verified winner can never be worse than the fast
        // winner's own engine latency.
        prop_assert!(out.best_engine_ms <= fast_ms + 1e-12);
    }
}

/// The calibrated error band on the bench workload is finite and within
/// the bound DESIGN.md documents ([`DOCUMENTED_ERROR_BAND`]).
#[test]
fn calibrated_band_is_finite_and_within_documented_bound() {
    let graph = barabasi_albert(2_000, 8, 42).expect("generator");
    let input = extract(&graph, 96, 16, 10, AggOrder::UpdateThenAggregate);
    let dim = input.aggregation_dim();
    let spec = GpuSpec::quadro_p6000();
    let out = tune_two_tier(&input, &spec, &small_search(), |p, e| {
        aggregation_metrics(&graph, dim, p, e)
    });
    let band = out.model.error_band();
    assert!(band.is_finite(), "calibration must produce a finite band");
    assert!(
        band <= DOCUMENTED_ERROR_BAND,
        "band {band} exceeds the documented bound {DOCUMENTED_ERROR_BAND}"
    );
}
