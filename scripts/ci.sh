#!/usr/bin/env bash
# Offline-friendly CI gate: formatting, lints, and the full test suite.
# Usage: scripts/ci.sh  (run from anywhere; no registry access required)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings -D deprecated"
# -D deprecated: the Engine compatibility shims (run/run_in/run_gemm/
# run_transfer) may only be called from their dedicated compat test, so
# a deprecation warning anywhere else in the workspace fails the build.
cargo clippy --offline --workspace --all-targets -- -D warnings -D deprecated

echo "==> cargo build --examples"
cargo build --offline --workspace --examples

echo "==> cargo test -q"
cargo test --offline --workspace -q

echo "==> profile smoke: trace bytes stable across runs and worker counts"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
profile() {
  cargo run --offline -q --bin gnnadvisor -- \
    profile --dataset Cora --scale 0.03 --trace-out "$1" >/dev/null
}
profile "$trace_dir/a.json"
profile "$trace_dir/b.json"
GNNADVISOR_SIM_THREADS=4 profile "$trace_dir/t4.json"
cmp "$trace_dir/a.json" "$trace_dir/b.json" || {
  echo "FAIL: profile trace differs between identical runs" >&2
  exit 1
}
cmp "$trace_dir/a.json" "$trace_dir/t4.json" || {
  echo "FAIL: profile trace depends on GNNADVISOR_SIM_THREADS" >&2
  exit 1
}

echo "==> serve-sim smoke: report stable across runs and worker counts"
serve() {
  cargo run --offline -q --bin gnnadvisor -- \
    serve-sim --requests 32 --rate 4000 --streams 2 --scale 0.02 > "$1"
}
serve "$trace_dir/s_a.txt"
serve "$trace_dir/s_b.txt"
GNNADVISOR_SIM_THREADS=1 serve "$trace_dir/s_t1.txt"
GNNADVISOR_SIM_THREADS=4 serve "$trace_dir/s_t4.txt"
grep -q "latency p50" "$trace_dir/s_a.txt" || {
  echo "FAIL: serve-sim report missing latency stats" >&2
  exit 1
}
grep -q "kernel occupancy" "$trace_dir/s_a.txt" || {
  echo "FAIL: serve-sim report missing the kernel occupancy row" >&2
  exit 1
}
cmp "$trace_dir/s_a.txt" "$trace_dir/s_b.txt" || {
  echo "FAIL: serve-sim report differs between identical runs" >&2
  exit 1
}
cmp "$trace_dir/s_t1.txt" "$trace_dir/s_t4.txt" || {
  echo "FAIL: serve-sim report depends on GNNADVISOR_SIM_THREADS" >&2
  exit 1
}
cmp "$trace_dir/s_a.txt" "$trace_dir/s_t1.txt" || {
  echo "FAIL: serve-sim report depends on GNNADVISOR_SIM_THREADS" >&2
  exit 1
}

echo "==> chaos smoke: faulted serve-sim stable across runs and worker counts"
chaos() {
  cargo run --offline -q --bin gnnadvisor -- \
    serve-sim --requests 32 --rate 4000 --streams 2 --scale 0.02 \
    --fault-rate 0.2 --retries 2 --deadline-ms 40 > "$1"
}
chaos "$trace_dir/c_a.txt"
chaos "$trace_dir/c_b.txt"
GNNADVISOR_SIM_THREADS=1 chaos "$trace_dir/c_t1.txt"
GNNADVISOR_SIM_THREADS=4 chaos "$trace_dir/c_t4.txt"
grep -q "batch retries" "$trace_dir/c_a.txt" || {
  echo "FAIL: faulted serve-sim report missing reliability stats" >&2
  exit 1
}
cmp "$trace_dir/c_a.txt" "$trace_dir/c_b.txt" || {
  echo "FAIL: faulted serve-sim report differs between identical runs" >&2
  exit 1
}
cmp "$trace_dir/c_t1.txt" "$trace_dir/c_t4.txt" || {
  echo "FAIL: faulted serve-sim report depends on GNNADVISOR_SIM_THREADS" >&2
  exit 1
}
cmp "$trace_dir/c_a.txt" "$trace_dir/c_t1.txt" || {
  echo "FAIL: faulted serve-sim report depends on GNNADVISOR_SIM_THREADS" >&2
  exit 1
}

echo "==> serve-cluster smoke: report stable across runs and worker counts"
cluster() {
  cargo run --offline -q --bin gnnadvisor -- \
    serve-cluster --requests 32 --rate 4000 --streams 2 --scale 0.02 \
    --replicas 2 --tenants batch:3,online:1:40 --fault-rate 0.2 --retries 2 > "$1"
}
cluster "$trace_dir/k_a.txt"
cluster "$trace_dir/k_b.txt"
GNNADVISOR_SIM_THREADS=1 cluster "$trace_dir/k_t1.txt"
GNNADVISOR_SIM_THREADS=4 cluster "$trace_dir/k_t4.txt"
grep -q "tenant online" "$trace_dir/k_a.txt" || {
  echo "FAIL: serve-cluster report missing tenant rows" >&2
  exit 1
}
grep -q "replica submissions" "$trace_dir/k_a.txt" || {
  echo "FAIL: serve-cluster report missing replica loads" >&2
  exit 1
}
cmp "$trace_dir/k_a.txt" "$trace_dir/k_b.txt" || {
  echo "FAIL: serve-cluster report differs between identical runs" >&2
  exit 1
}
cmp "$trace_dir/k_t1.txt" "$trace_dir/k_t4.txt" || {
  echo "FAIL: serve-cluster report depends on GNNADVISOR_SIM_THREADS" >&2
  exit 1
}
cmp "$trace_dir/k_a.txt" "$trace_dir/k_t1.txt" || {
  echo "FAIL: serve-cluster report depends on GNNADVISOR_SIM_THREADS" >&2
  exit 1
}

echo "==> serve-dynamic smoke: report stable across runs and worker counts"
dynamic() {
  cargo run --offline -q --bin gnnadvisor -- \
    serve-dynamic --requests 32 --rate 4000 --streams 2 --scale 0.02 \
    --updates 600 --update-gap-ms 0.01 > "$1"
}
dynamic "$trace_dir/d_a.txt"
dynamic "$trace_dir/d_b.txt"
GNNADVISOR_SIM_THREADS=1 dynamic "$trace_dir/d_t1.txt"
GNNADVISOR_SIM_THREADS=4 dynamic "$trace_dir/d_t4.txt"
grep -q "dynamic-graph report" "$trace_dir/d_a.txt" || {
  echo "FAIL: serve-dynamic report missing the dynamic-graph section" >&2
  exit 1
}
grep -q "updates applied" "$trace_dir/d_a.txt" || {
  echo "FAIL: serve-dynamic report missing the update counters" >&2
  exit 1
}
cmp "$trace_dir/d_a.txt" "$trace_dir/d_b.txt" || {
  echo "FAIL: serve-dynamic report differs between identical runs" >&2
  exit 1
}
cmp "$trace_dir/d_t1.txt" "$trace_dir/d_t4.txt" || {
  echo "FAIL: serve-dynamic report depends on GNNADVISOR_SIM_THREADS" >&2
  exit 1
}
cmp "$trace_dir/d_a.txt" "$trace_dir/d_t1.txt" || {
  echo "FAIL: serve-dynamic report depends on GNNADVISOR_SIM_THREADS" >&2
  exit 1
}

echo "==> train-minibatch smoke: report stable across runs and worker counts"
minibatch() {
  cargo run --offline -q --bin gnnadvisor -- \
    train-minibatch --scale 0.02 --batch-size 96 --epochs 2 --fanout 6,3 > "$1"
}
minibatch "$trace_dir/m_a.txt"
minibatch "$trace_dir/m_b.txt"
GNNADVISOR_SIM_THREADS=1 minibatch "$trace_dir/m_t1.txt"
GNNADVISOR_SIM_THREADS=4 minibatch "$trace_dir/m_t4.txt"
grep -q "total: pipelined" "$trace_dir/m_a.txt" || {
  echo "FAIL: train-minibatch report missing the pipeline totals" >&2
  exit 1
}
grep -q "overlap" "$trace_dir/m_a.txt" || {
  echo "FAIL: train-minibatch report missing the overlap column" >&2
  exit 1
}
cmp "$trace_dir/m_a.txt" "$trace_dir/m_b.txt" || {
  echo "FAIL: train-minibatch report differs between identical runs" >&2
  exit 1
}
cmp "$trace_dir/m_t1.txt" "$trace_dir/m_t4.txt" || {
  echo "FAIL: train-minibatch report depends on GNNADVISOR_SIM_THREADS" >&2
  exit 1
}
cmp "$trace_dir/m_a.txt" "$trace_dir/m_t1.txt" || {
  echo "FAIL: train-minibatch report depends on GNNADVISOR_SIM_THREADS" >&2
  exit 1
}

echo "==> tune smoke: two-tier report stable across runs and worker counts"
tune2() {
  cargo run --offline -q --release --bin gnnadvisor -- \
    tune --dataset Cora --scale 0.05 "${@:2}" > "$1"
}
tune2 "$trace_dir/u_a.txt"
tune2 "$trace_dir/u_b.txt"
GNNADVISOR_SIM_THREADS=1 tune2 "$trace_dir/u_t1.txt"
GNNADVISOR_SIM_THREADS=4 tune2 "$trace_dir/u_t4.txt"
grep -q "estimating (two-tier)" "$trace_dir/u_a.txt" || {
  echo "FAIL: tune report missing the two-tier stage" >&2
  exit 1
}
grep -q "calibration band" "$trace_dir/u_a.txt" || {
  echo "FAIL: tune report missing the calibration band" >&2
  exit 1
}
cmp "$trace_dir/u_a.txt" "$trace_dir/u_b.txt" || {
  echo "FAIL: tune report differs between identical runs" >&2
  exit 1
}
cmp "$trace_dir/u_t1.txt" "$trace_dir/u_t4.txt" || {
  echo "FAIL: tune report depends on GNNADVISOR_SIM_THREADS" >&2
  exit 1
}
cmp "$trace_dir/u_a.txt" "$trace_dir/u_t1.txt" || {
  echo "FAIL: tune report depends on GNNADVISOR_SIM_THREADS" >&2
  exit 1
}
# The fast path must price candidates at least 20x faster than full
# simulation (release build, so the ratio is not a debug-mode artifact);
# the measured ratio prints to stderr and failure surfaces as an error.
tune2 "$trace_dir/u_sc.txt" --speed-check 20 || {
  echo "FAIL: fast-path scoring is not 20x faster than full simulation" >&2
  exit 1
}
cmp "$trace_dir/u_a.txt" "$trace_dir/u_sc.txt" || {
  echo "FAIL: --speed-check changed the tune report on stdout" >&2
  exit 1
}

echo "CI green."
