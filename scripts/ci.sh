#!/usr/bin/env bash
# Offline-friendly CI gate: formatting, lints, and the full test suite.
# Usage: scripts/ci.sh  (run from anywhere; no registry access required)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --offline --workspace -q

echo "CI green."
